"""Unit tests for repro.net.link."""

import pytest

from repro.net.link import (
    LAN_1GBE,
    LAN_10GBE,
    LAN_40GBE,
    LOOPBACK,
    PRESETS,
    WAN_CLOUDNET,
    Link,
    get_link,
)

MIB = 2**20
GIB = 2**30


class TestPresets:
    def test_lan_effective_bandwidth_near_paper(self):
        # §4.4: ~120 MiB/s payload on gigabit, 1 GiB in ~10 s.
        assert 100 * MIB < LAN_1GBE.effective_bandwidth < 125 * MIB
        assert LAN_1GBE.transfer_time(GIB) == pytest.approx(9.1, abs=1.5)

    def test_wan_matches_paper_observation(self):
        # §4.4: a 1 GiB migration took 177 s on the emulated WAN.
        assert WAN_CLOUDNET.transfer_time(GIB) == pytest.approx(177, rel=0.1)

    def test_wan_is_window_limited_not_bandwidth_limited(self):
        nominal = WAN_CLOUDNET.bandwidth_bps / 8 * WAN_CLOUDNET.efficiency
        assert WAN_CLOUDNET.effective_bandwidth < nominal / 5

    def test_faster_links_ordered(self):
        assert (
            LAN_1GBE.effective_bandwidth
            < LAN_10GBE.effective_bandwidth
            < LAN_40GBE.effective_bandwidth
        )

    def test_get_link(self):
        assert get_link("wan-cloudnet") is WAN_CLOUDNET
        with pytest.raises(KeyError):
            get_link("carrier-pigeon")

    def test_every_preset_registered_under_its_own_name(self):
        for name, link in PRESETS.items():
            assert link.name == name
            assert get_link(name) is link

    def test_wan_anchor_effective_bandwidth(self):
        # The §4.4 anchor: the CloudNet WAN is window/RTT-limited to
        # about 6 MiB/s regardless of its 465 Mbit/s line rate.
        assert 5.5 * MIB <= WAN_CLOUDNET.effective_bandwidth <= 6.5 * MIB
        assert WAN_CLOUDNET.effective_bandwidth == pytest.approx(
            WAN_CLOUDNET.tcp_window_bytes / WAN_CLOUDNET.rtt_s
        )

    def test_loopback_preset_is_zero_latency_line_rate(self):
        assert LOOPBACK.latency_s == 0.0
        assert LOOPBACK.rtt_s == 0.0
        assert LOOPBACK.effective_bandwidth == pytest.approx(
            LOOPBACK.bandwidth_bps / 8
        )


class TestZeroLatency:
    def test_zero_latency_escapes_window_ceiling(self):
        # window / rtt would divide by zero; the model must fall back to
        # the line rate instead of raising or returning infinity.
        link = Link(name="z", bandwidth_bps=1e9, latency_s=0.0, efficiency=1.0)
        assert link.effective_bandwidth == pytest.approx(1e9 / 8)

    def test_zero_latency_transfer_time_is_pure_serialization(self):
        link = Link(name="z", bandwidth_bps=8e6, latency_s=0.0, efficiency=1.0)
        assert link.transfer_time(1_000_000) == pytest.approx(1.0)
        assert link.transfer_time(0) == 0.0


class TestSerializationDelay:
    def test_matches_transfer_time_minus_rtt(self):
        for link in (LAN_1GBE, WAN_CLOUDNET, LOOPBACK):
            assert link.serialization_delay(GIB) == pytest.approx(
                link.transfer_time(GIB) - link.rtt_s
            )

    def test_additive_over_chunks(self):
        whole = WAN_CLOUDNET.serialization_delay(10 * MIB)
        parts = sum(WAN_CLOUDNET.serialization_delay(MIB) for _ in range(10))
        assert whole == pytest.approx(parts)

    def test_zero_bytes_is_free(self):
        assert WAN_CLOUDNET.serialization_delay(0) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            WAN_CLOUDNET.serialization_delay(-1)


class TestTransferTime:
    def test_zero_bytes_pays_handshake(self):
        assert LAN_1GBE.transfer_time(0) == pytest.approx(LAN_1GBE.rtt_s)

    def test_monotone_in_bytes(self):
        assert LAN_1GBE.transfer_time(2 * GIB) > LAN_1GBE.transfer_time(GIB)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            LAN_1GBE.transfer_time(-1)

    def test_request_response_pays_round_trip(self):
        t = WAN_CLOUDNET.request_response_time(16, 1)
        assert t >= WAN_CLOUDNET.rtt_s

    def test_per_page_queries_lose_on_wan(self):
        # §3.2's rejected alternative: one synchronous round trip per
        # page is catastrophic at 27 ms latency.
        pages = 1 << 10
        per_page = pages * WAN_CLOUDNET.request_response_time(25, 1)
        bulk = WAN_CLOUDNET.transfer_time(pages * 16)
        assert per_page > 20 * bulk


class TestValidation:
    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            Link(name="x", bandwidth_bps=0)
        with pytest.raises(ValueError):
            Link(name="x", bandwidth_bps=-1e9)

    def test_invalid_latency(self):
        with pytest.raises(ValueError):
            Link(name="x", bandwidth_bps=1e9, latency_s=-1)

    def test_invalid_efficiency(self):
        with pytest.raises(ValueError):
            Link(name="x", bandwidth_bps=1e9, efficiency=0.0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            Link(name="x", bandwidth_bps=1e9, tcp_window_bytes=0)
