"""Unit tests for the similarity-decay analysis (Figures 1 and 2)."""

import numpy as np
import pytest

from repro.analysis.similarity import similarity_decay
from repro.core.fingerprint import Fingerprint
from repro.traces.generate import Trace, generate_trace
from repro.traces.workload import EPOCH_SECONDS

from tests.conftest import tiny_machine


def synthetic_trace(hash_rows, epoch_seconds=EPOCH_SECONDS):
    fingerprints = [
        Fingerprint(
            hashes=np.asarray(row, dtype=np.uint64),
            timestamp=(i + 1) * epoch_seconds,
        )
        for i, row in enumerate(hash_rows)
    ]
    return Trace(machine="synthetic", ram_bytes=len(hash_rows[0]) * 4096,
                 fingerprints=fingerprints)


class TestBinning:
    def test_constant_memory_full_similarity_everywhere(self):
        trace = synthetic_trace([[1, 2, 3]] * 10)
        decay = similarity_decay(trace, max_delta_hours=5)
        populated = decay.counts > 0
        assert populated.any()
        assert np.allclose(decay.average[populated], 1.0)
        assert np.allclose(decay.minimum[populated], 1.0)

    def test_completely_changing_memory_zero_similarity(self):
        rows = [[10 * i + j for j in range(4)] for i in range(1, 8)]
        trace = synthetic_trace(rows)
        decay = similarity_decay(trace, max_delta_hours=4)
        populated = decay.counts > 0
        assert np.allclose(decay.maximum[populated], 0.0)

    def test_bin_structure_follows_paper(self):
        # First bin covers [15, 45) minutes and is centred at 0.5 h.
        trace = synthetic_trace([[1]] * 4)
        decay = similarity_decay(trace, max_delta_hours=2)
        assert decay.bin_hours[0] == pytest.approx(0.5)
        assert decay.bin_hours[1] == pytest.approx(1.0)
        # 3 consecutive 30-min pairs land in the first bin.
        assert decay.counts[0] == 3

    def test_pair_count_matches_combinatorics(self):
        n = 10
        trace = synthetic_trace([[1, 2]] * n)
        decay = similarity_decay(trace, max_delta_hours=24)
        assert decay.counts.sum() == n * (n - 1) // 2

    def test_max_delta_excludes_far_pairs(self):
        trace = synthetic_trace([[1]] * 20)
        decay = similarity_decay(trace, max_delta_hours=1)
        # Only deltas of 30 and 60 minutes fit below 1 h... the bin edge
        # logic keeps deltas in [15m, 1h).
        assert decay.counts.sum() == 19  # the 30-minute pairs only

    def test_subsampling_bounds_work(self):
        trace = synthetic_trace([[1, 2]] * 30)
        decay = similarity_decay(trace, max_delta_hours=24, max_pairs_per_bin=5)
        assert decay.counts.max() <= 5

    def test_needs_two_fingerprints(self):
        with pytest.raises(ValueError):
            similarity_decay(synthetic_trace([[1]]), max_delta_hours=1)

    def test_invalid_bin_width(self):
        with pytest.raises(ValueError):
            similarity_decay(synthetic_trace([[1]] * 3), bin_minutes=0)


class TestAtHours:
    def test_nearest_bin_lookup(self):
        trace = synthetic_trace([[1, 2]] * 8)
        decay = similarity_decay(trace, max_delta_hours=4)
        lo, avg, hi = decay.at_hours(1.0)
        assert lo == avg == hi == 1.0

    def test_empty_decay_raises(self):
        trace = synthetic_trace([[1]] * 3)
        decay = similarity_decay(trace, max_delta_hours=24)
        # Bins beyond the trace length are empty but at_hours falls back
        # to the nearest populated bin.
        assert decay.at_hours(23.0)


class TestRealisticDecay:
    def test_similarity_decreases_with_delta(self):
        trace = generate_trace(tiny_machine(), num_epochs=48)
        decay = similarity_decay(trace, max_delta_hours=20)
        short = decay.at_hours(1)[1]
        long = decay.at_hours(18)[1]
        assert short > long

    def test_min_le_avg_le_max(self):
        trace = generate_trace(tiny_machine(), num_epochs=48)
        decay = similarity_decay(trace, max_delta_hours=20)
        populated = decay.counts > 0
        assert (decay.minimum[populated] <= decay.average[populated] + 1e-12).all()
        assert (decay.average[populated] <= decay.maximum[populated] + 1e-12).all()
