"""Unit tests for the terminal plotting helpers."""

import numpy as np
import pytest

from repro.analysis.asciiplot import bar_chart, cdf_plot, line_plot


class TestLinePlot:
    def test_renders_series_and_legend(self):
        out = line_plot([0, 1, 2], {"avg": [0.1, 0.5, 0.9]}, width=20, height=6)
        assert "avg" in out
        assert "*" in out
        assert out.count("\n") >= 6

    def test_multiple_series_distinct_markers(self):
        out = line_plot(
            [0, 1], {"a": [0.0, 1.0], "b": [1.0, 0.0]}, width=10, height=4
        )
        assert "*" in out and "o" in out

    def test_nan_points_skipped(self):
        out = line_plot([0, 1, 2], {"a": [0.5, float("nan"), 0.7]})
        assert "a" in out

    def test_flat_series_does_not_crash(self):
        assert line_plot([0, 1], {"a": [0.5, 0.5]})

    def test_single_x_value(self):
        assert line_plot([3], {"a": [0.5]})

    def test_y_range_override(self):
        out = line_plot([0, 1], {"a": [0.2, 0.4]}, y_range=(0, 1), height=5)
        assert "1.00" in out and "0.00" in out

    def test_errors(self):
        with pytest.raises(ValueError):
            line_plot([0, 1], {})
        with pytest.raises(ValueError):
            line_plot([], {"a": []})
        with pytest.raises(ValueError):
            line_plot([0, 1], {"a": [1.0]})
        with pytest.raises(ValueError):
            line_plot([0], {"a": [float("nan")]})

    def test_x_label(self):
        out = line_plot([0, 1], {"a": [0, 1]}, x_label="hours")
        assert "hours" in out


class TestBarChart:
    def test_bars_scaled(self):
        out = bar_chart({"dedup": 0.9, "vecycle": 0.3}, width=10)
        lines = out.splitlines()
        assert lines[0].count("#") > lines[1].count("#")
        assert "0.90" in out and "0.30" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})

    def test_zero_values(self):
        assert "0.00" in bar_chart({"a": 0.0})


class TestCdfPlot:
    def test_monotone_render(self):
        data = np.random.default_rng(0).normal(10, 2, size=100)
        out = cdf_plot(data, width=30, height=8, x_label="reduction %")
        assert "CDF" in out and "reduction %" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cdf_plot([])
