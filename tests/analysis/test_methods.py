"""Unit tests for the method comparison analysis (Figure 5)."""

import numpy as np
import pytest

from repro.analysis.methods import (
    cdf,
    compare_methods_over_trace,
    pair_fractions,
)
from repro.core.checkpoint import ChecksumIndex
from repro.core.fingerprint import Fingerprint
from repro.core.transfer import Method, PAPER_METHODS, compute_transfer_set
from repro.traces.generate import Trace


def fp(values, timestamp=0.0):
    return Fingerprint(hashes=np.asarray(values, dtype=np.uint64), timestamp=timestamp)


class TestPairFractions:
    def test_agrees_with_transfer_sets(self):
        rng = np.random.default_rng(0)
        checkpoint_hashes = rng.integers(0, 30, size=64).astype(np.uint64)
        current_hashes = checkpoint_hashes.copy()
        current_hashes[rng.choice(64, size=20, replace=False)] = rng.integers(
            30, 60, size=20
        ).astype(np.uint64)
        current, checkpoint = Fingerprint(current_hashes), Fingerprint(checkpoint_hashes)
        index = ChecksumIndex(checkpoint)
        fractions = pair_fractions(
            current_hashes, checkpoint_hashes, index, tuple(Method)
        )
        for method in Method:
            expected = compute_transfer_set(
                method,
                current,
                checkpoint=checkpoint if method.uses_checkpoint else None,
            )
            assert fractions[method] == pytest.approx(expected.page_fraction), method

    def test_identical_pair_only_dedup_cost(self):
        values = np.asarray([1, 1, 2, 3], dtype=np.uint64)
        index = ChecksumIndex(Fingerprint(values))
        fractions = pair_fractions(values, values, index, PAPER_METHODS)
        assert fractions[Method.HASHES] == 0.0
        assert fractions[Method.DIRTY] == 0.0
        assert fractions[Method.DEDUP] == pytest.approx(3 / 4)


class TestCompareOverTrace:
    def _trace(self, rows):
        prints = [fp(row, timestamp=(i + 1) * 1800.0) for i, row in enumerate(rows)]
        return Trace(machine="t", ram_bytes=4096 * len(rows[0]), fingerprints=prints)

    def test_pair_enumeration(self):
        trace = self._trace([[1, 2]] * 5)
        comparison = compare_methods_over_trace(trace)
        assert comparison.num_pairs == 10

    def test_max_pairs_subsamples(self):
        trace = self._trace([[1, 2]] * 10)
        comparison = compare_methods_over_trace(trace, max_pairs=7, seed=1)
        assert comparison.num_pairs == 7

    def test_delta_filters(self):
        trace = self._trace([[1, 2]] * 10)
        comparison = compare_methods_over_trace(
            trace, min_delta_hours=1.0, max_delta_hours=2.0
        )
        # Deltas of 1, 1.5 and 2 hours between 10 half-hourly prints.
        assert comparison.num_pairs == 8 + 7 + 6

    def test_no_pairs_raises(self):
        trace = self._trace([[1]] * 2)
        with pytest.raises(ValueError):
            compare_methods_over_trace(trace, min_delta_hours=10)

    def test_single_fingerprint_raises(self):
        with pytest.raises(ValueError):
            compare_methods_over_trace(self._trace([[1]]))

    def test_reduction_over_handles_zero_baseline(self):
        trace = self._trace([[1, 2]] * 4)
        comparison = compare_methods_over_trace(trace)
        reduction = comparison.reduction_over()
        assert (reduction == 0.0).all()

    def test_figure5_orderings_on_realistic_trace(self, tiny_trace):
        comparison = compare_methods_over_trace(tiny_trace, max_pairs=150, seed=5)
        dedup = comparison.mean_fraction(Method.DEDUP)
        dirty = comparison.mean_fraction(Method.DIRTY)
        dirty_dedup = comparison.mean_fraction(Method.DIRTY_DEDUP)
        hashes = comparison.mean_fraction(Method.HASHES)
        hashes_dedup = comparison.mean_fraction(Method.HASHES_DEDUP)
        # §4.3's findings, as orderings.
        assert dedup > dirty > dirty_dedup
        assert hashes < dirty
        assert hashes_dedup <= hashes
        assert hashes_dedup < dirty_dedup


class TestCdf:
    def test_cdf_shape(self):
        values, probabilities = cdf(np.asarray([3.0, 1.0, 2.0]))
        assert list(values) == [1.0, 2.0, 3.0]
        assert probabilities[-1] == 1.0
        assert (np.diff(probabilities) > 0).all()

    def test_empty(self):
        values, probabilities = cdf(np.asarray([]))
        assert values.size == 0 and probabilities.size == 0
