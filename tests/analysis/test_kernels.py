"""Cross-validation of the vectorized kernels against their references.

The perf work in PR 3 replaced per-pair ``intersect1d`` with a
searchsorted membership count and ``np.unique`` with a sort-and-mask
pass.  These tests pin the optimized kernels to the straightforward
implementations on randomized inputs.
"""

import numpy as np
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.analysis.similarity import (
    pair_similarities,
    pair_similarities_reference,
)
from repro.core.fingerprint import Fingerprint, sorted_unique


class TestSortedUnique:
    @given(
        arrays(
            dtype=np.uint64,
            shape=st.integers(min_value=0, max_value=200),
            elements=st.integers(min_value=0, max_value=50),
        )
    )
    def test_matches_np_unique(self, values):
        assert np.array_equal(sorted_unique(values), np.unique(values))

    def test_empty(self):
        empty = np.asarray([], dtype=np.uint64)
        assert sorted_unique(empty).size == 0

    def test_does_not_mutate_input(self):
        values = np.asarray([3, 1, 2, 1], dtype=np.uint64)
        kept = values.copy()
        sorted_unique(values)
        assert np.array_equal(values, kept)

    def test_extreme_uint64_values(self):
        values = np.asarray(
            [2**64 - 1, 0, 2**63, 2**64 - 1, 1], dtype=np.uint64
        )
        assert np.array_equal(sorted_unique(values), np.unique(values))


class TestPairSimilarityKernels:
    def _random_uniques(self, rng, count=12, universe=300, max_size=120):
        uniques = []
        for _ in range(count):
            size = int(rng.integers(0, max_size))
            values = rng.choice(universe, size=size, replace=False).astype(np.uint64)
            uniques.append(np.sort(values))
        return uniques

    def test_matches_reference_on_random_pairs(self):
        rng = np.random.default_rng(42)
        uniques = self._random_uniques(rng)
        n = len(uniques)
        earlier = rng.integers(0, n, size=80)
        later = rng.integers(0, n, size=80)
        fast = pair_similarities(uniques, earlier, later)
        reference = pair_similarities_reference(uniques, earlier, later)
        assert np.array_equal(fast, reference)

    def test_matches_fingerprint_similarity_to(self):
        rng = np.random.default_rng(7)
        a = Fingerprint(hashes=rng.integers(0, 40, size=64).astype(np.uint64))
        b = Fingerprint(hashes=rng.integers(0, 40, size=64).astype(np.uint64))
        uniques = [a.unique_hashes(), b.unique_hashes()]
        result = pair_similarities(
            uniques, np.asarray([1]), np.asarray([0])
        )
        # later=a, earlier=b → |Ua ∩ Ub| / |Ua| = a.similarity_to(b)
        assert result[0] == a.similarity_to(b)

    def test_empty_pair_list(self):
        uniques = [np.asarray([1, 2], dtype=np.uint64)]
        empty = np.asarray([], dtype=np.int64)
        assert pair_similarities(uniques, empty, empty).size == 0

    def test_empty_later_fingerprint_is_zero(self):
        uniques = [
            np.asarray([], dtype=np.uint64),
            np.asarray([1, 2], dtype=np.uint64),
        ]
        fast = pair_similarities(uniques, np.asarray([1]), np.asarray([0]))
        reference = pair_similarities_reference(
            uniques, np.asarray([1]), np.asarray([0])
        )
        assert fast[0] == reference[0] == 0.0
