"""Unit tests for the duplicate/zero page analysis (Figure 4)."""

import numpy as np
import pytest

from repro.analysis.duplicates import duplicate_series
from repro.core.fingerprint import Fingerprint
from repro.traces.generate import Trace


def trace_of(rows):
    fingerprints = [
        Fingerprint(hashes=np.asarray(row, dtype=np.uint64), timestamp=i * 1800.0)
        for i, row in enumerate(rows)
    ]
    return Trace(machine="t", ram_bytes=4096 * len(rows[0]), fingerprints=fingerprints)


class TestDuplicateSeries:
    def test_all_unique_no_duplicates(self):
        series = duplicate_series(trace_of([[1, 2, 3, 4]]))
        assert series.duplicate_fraction[0] == 0.0

    def test_duplicate_fraction_definition(self):
        # §4.2: 1 - unique/total.
        series = duplicate_series(trace_of([[1, 1, 2, 3]]))
        assert series.duplicate_fraction[0] == pytest.approx(0.25)

    def test_zero_fraction(self):
        series = duplicate_series(trace_of([[0, 0, 1, 2]]))
        assert series.zero_fraction[0] == pytest.approx(0.5)

    def test_zero_pages_count_as_duplicates(self):
        # Figure 4's observation: zero pages are a subset of duplicates.
        series = duplicate_series(trace_of([[0, 0, 0, 5]]))
        assert series.duplicate_fraction[0] >= series.zero_fraction[0] - 0.26

    def test_hours_axis(self):
        series = duplicate_series(trace_of([[1]] * 4))
        assert series.hours[1] == pytest.approx(0.5)

    def test_means(self):
        series = duplicate_series(trace_of([[1, 1], [1, 2]]))
        assert series.mean_duplicate_fraction == pytest.approx(0.25)
        assert series.mean_zero_fraction == 0.0

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            duplicate_series(Trace(machine="t", ram_bytes=0, fingerprints=[]))


class TestPresetsMatchFigure4(object):
    def test_tiny_trace_dup_exceeds_zero(self, tiny_trace):
        series = duplicate_series(tiny_trace)
        assert series.mean_duplicate_fraction > series.mean_zero_fraction
