"""Property-based tests for the extension modules (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.checkpoint import Checkpoint
from repro.core.fingerprint import Fingerprint
from repro.core.gang import GangMember, gang_transfer_set
from repro.core.incremental import plan_checkpoint_update
from repro.core.prediction import SimilarityPredictor
from repro.storage.blocksync import plan_disk_sync
from repro.traces.generate import Trace
from repro.traces.io import export_text, import_text

hash_arrays = arrays(
    dtype=np.uint64,
    shape=st.integers(min_value=1, max_value=32),
    elements=st.integers(min_value=0, max_value=10),
)


class TestGangProperties:
    @given(st.lists(hash_arrays, min_size=1, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_partition_conservation(self, fleets):
        members = [
            GangMember(vm_id=f"vm{i}", fingerprint=Fingerprint(hashes=values))
            for i, values in enumerate(fleets)
        ]
        for cross_dedup in (False, True):
            result = gang_transfer_set(members, cross_vm_dedup=cross_dedup)
            assert (
                result.full_pages + result.ref_pages + result.reused_pages
                == result.total_pages
            )

    @given(st.lists(hash_arrays, min_size=2, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_cross_dedup_never_worse(self, fleets):
        members = [
            GangMember(vm_id=f"vm{i}", fingerprint=Fingerprint(hashes=values))
            for i, values in enumerate(fleets)
        ]
        solo = gang_transfer_set(members, cross_vm_dedup=False)
        gang = gang_transfer_set(members, cross_vm_dedup=True)
        assert gang.full_pages <= solo.full_pages

    @given(hash_arrays, hash_arrays)
    @settings(max_examples=40, deadline=None)
    def test_merged_checkpoints_never_worse(self, a_values, b_values):
        n = min(len(a_values), len(b_values))
        a_values, b_values = a_values[:n], b_values[:n]
        checkpoint = Checkpoint(vm_id="a", fingerprint=Fingerprint(hashes=a_values))
        members = [
            GangMember(vm_id="a", fingerprint=Fingerprint(hashes=a_values),
                       checkpoint=checkpoint),
            GangMember(vm_id="b", fingerprint=Fingerprint(hashes=b_values)),
        ]
        own = gang_transfer_set(members, cross_vm_checkpoints=False)
        merged = gang_transfer_set(members, cross_vm_checkpoints=True)
        assert merged.full_pages <= own.full_pages
        assert merged.reused_pages >= own.reused_pages


class TestIncrementalProperties:
    @given(hash_arrays, hash_arrays)
    @settings(max_examples=40, deadline=None)
    def test_plan_counts_bounded(self, a_values, b_values):
        n = min(len(a_values), len(b_values))
        if n == 0:
            return
        plan = plan_checkpoint_update(
            Fingerprint(hashes=a_values[:n]), Fingerprint(hashes=b_values[:n])
        )
        assert 0 <= plan.num_changed <= n
        assert 0.0 <= plan.unchanged_fraction <= 1.0

    @given(hash_arrays)
    @settings(max_examples=30, deadline=None)
    def test_self_update_is_empty(self, values):
        fingerprint = Fingerprint(hashes=values)
        plan = plan_checkpoint_update(fingerprint, fingerprint)
        assert plan.num_changed == 0


class TestBlockSyncProperties:
    @given(hash_arrays, hash_arrays)
    @settings(max_examples=40, deadline=None)
    def test_partition_and_bounds(self, current, replica):
        n = min(len(current), len(replica))
        if n == 0:
            return
        plan = plan_disk_sync(current[:n], destination_replica=replica[:n])
        assert (
            plan.blocks_full + plan.blocks_reused + plan.blocks_skipped
            == plan.num_blocks
        )
        assert 0.0 <= plan.fraction_of_full <= 1.0

    @given(hash_arrays)
    @settings(max_examples=30, deadline=None)
    def test_identical_replica_free(self, blocks):
        plan = plan_disk_sync(blocks, destination_replica=blocks.copy())
        assert plan.blocks_full == 0

    @given(hash_arrays)
    @settings(max_examples=30, deadline=None)
    def test_replica_never_hurts(self, blocks):
        cold = plan_disk_sync(blocks)
        warm = plan_disk_sync(blocks, destination_replica=blocks.copy())
        assert warm.blocks_full <= cold.blocks_full


class TestPredictorProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=7 * 86400),
                st.floats(min_value=0.0, max_value=1.0),
            ),
            min_size=0,
            max_size=12,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_predictions_always_valid(self, samples):
        predictor = SimilarityPredictor()
        for age, similarity in samples:
            predictor.observe(age, similarity)
        for age_h in (0, 1, 24, 24 * 14):
            value = predictor.predict(age_h * 3600.0)
            assert 0.0 <= value <= 1.0

    @given(st.floats(min_value=0.0, max_value=0.9), st.floats(min_value=600, max_value=86400))
    @settings(max_examples=20, deadline=None)
    def test_fit_recovers_floor_approximately(self, floor, tau):
        predictor = SimilarityPredictor()
        for age in np.linspace(600, 5 * tau, 10):
            predictor.observe(
                float(age), floor + (1 - floor) * float(np.exp(-age / tau))
            )
        assert abs(predictor.predict(100 * tau) - floor) < 0.15


class TestTraceIoProperties:
    @given(
        st.lists(hash_arrays, min_size=1, max_size=4),
        st.integers(min_value=1, max_value=2**40),
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_arbitrary_traces(self, rows, ram_bytes):
        import tempfile
        from pathlib import Path

        n = min(len(row) for row in rows)
        fingerprints = [
            Fingerprint(hashes=row[:n], timestamp=float(i * 1800))
            for i, row in enumerate(rows)
        ]
        trace = Trace(machine="prop", ram_bytes=ram_bytes, fingerprints=fingerprints)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "trace.txt"
            export_text(trace, path)
            loaded = import_text(path)
        assert loaded.ram_bytes == ram_bytes
        assert len(loaded) == len(trace)
        for a, b in zip(trace.fingerprints, loaded.fingerprints):
            assert (a.hashes == b.hashes).all()
            assert a.timestamp == b.timestamp
