"""End-to-end tests of the byte-faithful migration protocol (Listing 1)."""

import numpy as np
import pytest

from repro.core.checksum import get_algorithm
from repro.vmm.guest import GuestRAM, mutate_random_pages, relocate_pages
from repro.vmm.migrate import (
    MigrationDestination,
    PageMessage,
    ProtocolError,
    run_migration,
    write_checkpoint,
)


def populated_ram(num_pages=32, seed=0):
    ram = GuestRAM(num_pages)
    for page in range(num_pages):
        ram.write_pattern(page, seed=seed * 1000 + page)
    return ram


class TestCheckpointFile:
    def test_write_checkpoint_size(self, tmp_path):
        ram = populated_ram(8)
        path = tmp_path / "ckpt"
        assert write_checkpoint(ram, path) == ram.size_bytes
        assert path.stat().st_size == ram.size_bytes

    def test_destination_preloads_checkpoint(self, tmp_path):
        ram = populated_ram(8)
        path = tmp_path / "ckpt"
        write_checkpoint(ram, path)
        destination = MigrationDestination(8, checkpoint_path=path)
        assert destination.ram == ram

    def test_size_mismatch_rejected(self, tmp_path):
        path = tmp_path / "ckpt"
        write_checkpoint(populated_ram(8), path)
        with pytest.raises(ValueError):
            MigrationDestination(16, checkpoint_path=path)


class TestFirstVisit:
    def test_no_checkpoint_everything_sent(self):
        source = populated_ram(16)
        result = run_migration(source, checkpoint_path=None)
        assert result.identical
        assert result.send.pages_full == 16
        assert result.send.pages_checksum_only == 0

    def test_empty_announce(self):
        destination = MigrationDestination(4)
        assert destination.announce() == frozenset()


class TestPingPongReuse:
    def test_identical_memory_sends_no_pages(self, tmp_path):
        ram = populated_ram(16)
        path = tmp_path / "ckpt"
        write_checkpoint(ram, path)
        result = run_migration(ram, checkpoint_path=path)
        assert result.identical
        assert result.send.pages_full == 0
        assert result.send.pages_checksum_only == 16
        assert result.merge.pages_reused_in_place == 16
        assert result.merge.pages_reused_from_disk == 0

    def test_partial_update_sends_only_changes(self, tmp_path):
        ram = populated_ram(32, seed=1)
        path = tmp_path / "ckpt"
        write_checkpoint(ram, path)
        rng = np.random.default_rng(5)
        changed = mutate_random_pages(ram, 0.25, rng)
        result = run_migration(ram, checkpoint_path=path)
        assert result.identical
        assert result.send.pages_full == len(changed)
        assert result.send.pages_checksum_only == 32 - len(changed)

    def test_relocated_pages_read_from_disk(self, tmp_path):
        ram = populated_ram(16, seed=2)
        path = tmp_path / "ckpt"
        write_checkpoint(ram, path)
        rng = np.random.default_rng(9)
        relocate_pages(ram, np.arange(16), rng)
        result = run_migration(ram, checkpoint_path=path)
        assert result.identical
        assert result.send.pages_full == 0
        # Pages that landed on a different frame are merged from the
        # checkpoint file via the binary-searched offset (Listing 1).
        assert result.merge.pages_reused_from_disk > 0
        assert (
            result.merge.pages_reused_from_disk
            + result.merge.pages_reused_in_place
            == 16
        )

    def test_traffic_shrinks_with_similarity(self, tmp_path):
        ram = populated_ram(64, seed=3)
        path = tmp_path / "ckpt"
        write_checkpoint(ram, path)
        rng = np.random.default_rng(11)

        low_change = populated_ram(64, seed=3)
        mutate_random_pages(low_change, 0.1, rng)
        high_change = populated_ram(64, seed=3)
        mutate_random_pages(high_change, 0.9, rng)

        low = run_migration(low_change, checkpoint_path=path)
        high = run_migration(high_change, checkpoint_path=path)
        assert low.tx_bytes < high.tx_bytes
        assert low.identical and high.identical


class TestAlgorithms:
    @pytest.mark.parametrize("name", ["md5", "sha1", "sha256", "blake2b"])
    def test_protocol_works_with_any_checksum(self, tmp_path, name):
        algorithm = get_algorithm(name)
        ram = populated_ram(8, seed=4)
        path = tmp_path / "ckpt"
        write_checkpoint(ram, path)
        mutate_random_pages(ram, 0.25, np.random.default_rng(1))
        result = run_migration(ram, checkpoint_path=path, algorithm=algorithm)
        assert result.identical


class TestProtocolErrors:
    def test_unknown_checksum_only_message_raises(self, tmp_path):
        ram = populated_ram(4, seed=6)
        path = tmp_path / "ckpt"
        write_checkpoint(ram, path)
        destination = MigrationDestination(4, checkpoint_path=path)
        destination.announce()
        bogus = PageMessage(page_number=0, checksum=b"\x00" * 16, payload=None)
        with pytest.raises(ProtocolError):
            destination.receive(bogus)

    def test_wire_bytes_accounting(self):
        full = PageMessage(0, b"c" * 16, payload=bytes(4096))
        small = PageMessage(0, b"c" * 16)
        assert full.wire_bytes == 9 + 16 + 4096
        assert small.wire_bytes == 9 + 16

    def test_merge_stats_sum(self, tmp_path):
        ram = populated_ram(16, seed=8)
        path = tmp_path / "ckpt"
        write_checkpoint(ram, path)
        mutate_random_pages(ram, 0.5, np.random.default_rng(2))
        result = run_migration(ram, checkpoint_path=path)
        assert result.merge.pages_received == 16
        assert (
            result.send.pages_full + result.merge.pages_reused == 16
        )
