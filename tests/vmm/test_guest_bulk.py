"""Tests for GuestRAM's bulk span writes and zero-copy views."""

import numpy as np
import pytest

from repro.core.checksum import PAGE_SIZE
from repro.vmm.guest import GuestRAM


class TestWriteSpan:
    def test_matches_per_page_writes(self):
        bulk = GuestRAM(8)
        loop = GuestRAM(8)
        rng = np.random.default_rng(0)
        pages = [rng.integers(0, 256, size=PAGE_SIZE, dtype=np.uint8).tobytes()
                 for _ in range(4)]
        bulk.write_span(2, b"".join(pages))
        for offset, page in enumerate(pages):
            loop.write_page(2 + offset, page)
        assert bulk == loop

    def test_rejects_partial_page(self):
        ram = GuestRAM(4)
        with pytest.raises(ValueError):
            ram.write_span(0, b"x" * (PAGE_SIZE + 1))

    def test_rejects_empty(self):
        ram = GuestRAM(4)
        with pytest.raises(ValueError):
            ram.write_span(0, b"")

    def test_rejects_overflow(self):
        ram = GuestRAM(4)
        with pytest.raises(IndexError):
            ram.write_span(3, bytes(2 * PAGE_SIZE))

    def test_rejects_negative_page(self):
        ram = GuestRAM(4)
        with pytest.raises(IndexError):
            ram.write_span(-1, bytes(PAGE_SIZE))


class TestView:
    def test_view_matches_snapshot(self):
        ram = GuestRAM(4)
        ram.write_pattern(1, seed=9)
        assert bytes(ram.view()) == ram.snapshot()

    def test_view_is_readonly(self):
        ram = GuestRAM(2)
        view = ram.view()
        with pytest.raises(TypeError):
            view[0] = 1

    def test_view_is_zero_copy_of_live_buffer(self):
        ram = GuestRAM(2)
        view = ram.view()
        ram.write_pattern(0, seed=3)
        assert bytes(view[:PAGE_SIZE]) == ram.read_page(0)

    def test_per_page_slices_match_read_page(self):
        ram = GuestRAM(3)
        for page in range(3):
            ram.write_pattern(page, seed=page + 1)
        view = ram.view()
        for page in range(3):
            slice_ = view[page * PAGE_SIZE : (page + 1) * PAGE_SIZE]
            assert bytes(slice_) == ram.read_page(page)
