"""Failure injection for the byte-faithful migration protocol.

What happens when the checkpoint file rots, is truncated, or the
checksum algorithm is too weak?  The paper leans on MD5's collision
resistance (§3.4: "VeCycle has to rely on strong checksums"); these
tests demonstrate the failure modes that justify that reliance.
"""

import numpy as np
import pytest

from repro.core.checksum import ChecksumAlgorithm
from repro.vmm.guest import GuestRAM, mutate_random_pages
from repro.vmm.migrate import (
    MigrationDestination,
    ProtocolError,
    run_migration,
    write_checkpoint,
)


def populated_ram(num_pages=16, seed=0):
    ram = GuestRAM(num_pages)
    for page in range(num_pages):
        ram.write_pattern(page, seed=seed * 1000 + page)
    return ram


class TestCorruptCheckpoint:
    def test_bit_rot_detected_on_disk_reuse(self, tmp_path):
        """A flipped byte in the checkpoint file must not reach guest RAM.

        The destination indexes checksums while preloading; corruption
        after indexing is caught by the re-verification in the
        Listing 1 merge path.
        """
        ram = populated_ram()
        path = tmp_path / "ckpt"
        write_checkpoint(ram, path)
        destination = MigrationDestination(ram.num_pages, checkpoint_path=path)
        announced = destination.announce()

        # Rot one byte of page 3 *after* the index was built.
        blob = bytearray(path.read_bytes())
        blob[3 * 4096 + 100] ^= 0xFF
        path.write_bytes(bytes(blob))

        # Force the disk-reuse path: ask for page 3's content at a
        # different frame, so the in-memory copy (also stale) mismatches
        # and the destination seeks into the (now corrupt) file.
        page3 = ram.read_page(3)
        source_ram = GuestRAM(ram.num_pages)
        for page in range(ram.num_pages):
            source_ram.write_page(page, ram.read_page(page))
        source_ram.write_page(0, page3)          # page 3 content moved to frame 0
        source_ram.write_page(3, b"\x11" * 4096)  # frame 3 got new bytes

        from repro.vmm.migrate import MigrationSource

        source = MigrationSource(source_ram, announced)
        messages = list(source.messages())
        # Frame 0 carries page-3's old checksum -> the destination
        # (whose index predates the corruption) must fetch from disk,
        # detect the rot, and refuse rather than install wrong bytes.
        destination.ram.write_page(0, b"\x22" * 4096)  # defeat in-place check
        with pytest.raises(ProtocolError, match="no longer matches"):
            for message in messages:
                destination.receive(message)

    def test_rot_before_preload_caught_as_missing_checksum(self, tmp_path):
        """Corruption *before* the destination loads the checkpoint is
        caught differently: the announced set no longer contains the
        original checksum... but since the announce comes FROM the
        corrupted index, the source simply sends the page in full and
        the migration stays correct."""
        ram = populated_ram()
        path = tmp_path / "ckpt"
        write_checkpoint(ram, path)
        blob = bytearray(path.read_bytes())
        blob[3 * 4096 + 100] ^= 0xFF
        path.write_bytes(bytes(blob))
        result = run_migration(ram, checkpoint_path=path)
        assert result.identical
        # Exactly the rotted page travelled in full.
        assert result.send.pages_full == 1

    def test_truncated_checkpoint_rejected_at_load(self, tmp_path):
        ram = populated_ram()
        path = tmp_path / "ckpt"
        write_checkpoint(ram, path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(ValueError, match="bytes"):
            MigrationDestination(ram.num_pages, checkpoint_path=path)

    def test_oversized_checkpoint_rejected_at_load(self, tmp_path):
        ram = populated_ram()
        path = tmp_path / "ckpt"
        write_checkpoint(ram, path)
        path.write_bytes(path.read_bytes() + b"\x00" * 4096)
        with pytest.raises(ValueError):
            MigrationDestination(ram.num_pages, checkpoint_path=path)


class TestWeakChecksums:
    def test_colliding_checksum_silently_corrupts(self, tmp_path):
        """§3.4's warning made concrete: a checksum that collides lets
        the destination reuse the *wrong* page without noticing.

        We register a pathologically weak 1-byte "checksum": collisions
        are guaranteed with more than 256 distinct pages — here even
        with 16 pages the first-byte-only digest collides easily.
        """
        weak = ChecksumAlgorithm(
            name="first-byte",
            digest_size=1,
            throughput=1e12,
            func=lambda data: data[:1],
        )
        ram = GuestRAM(4)
        # Four pages sharing the first byte but differing afterwards.
        for page in range(4):
            ram.write_page(page, b"\xAA" + bytes([page]) * 4095)
        path = tmp_path / "ckpt"
        write_checkpoint(ram, path)

        # The source's memory: page 0 replaced by *different* content
        # that happens to share the weak digest.
        source = GuestRAM(4)
        for page in range(1, 4):
            source.write_page(page, ram.read_page(page))
        source.write_page(0, b"\xAA" + b"\xFF" * 4095)

        result = run_migration(source, checkpoint_path=path, algorithm=weak)
        # The protocol "succeeds" — zero pages sent — but the
        # destination's memory is NOT identical: silent corruption.
        assert result.send.pages_full == 0
        assert not result.identical

    def test_strong_checksum_immune_to_same_scenario(self, tmp_path):
        ram = GuestRAM(4)
        for page in range(4):
            ram.write_page(page, b"\xAA" + bytes([page]) * 4095)
        path = tmp_path / "ckpt"
        write_checkpoint(ram, path)
        source = GuestRAM(4)
        for page in range(1, 4):
            source.write_page(page, ram.read_page(page))
        source.write_page(0, b"\xAA" + b"\xFF" * 4095)

        result = run_migration(source, checkpoint_path=path)  # MD5
        assert result.send.pages_full == 1
        assert result.identical


class TestRandomizedEndToEnd:
    @pytest.mark.parametrize("seed", range(5))
    def test_arbitrary_mutations_always_reconstruct(self, tmp_path, seed):
        rng = np.random.default_rng(seed)
        ram = populated_ram(num_pages=24, seed=seed)
        path = tmp_path / "ckpt"
        write_checkpoint(ram, path)
        # A random mix of mutations.
        mutate_random_pages(ram, float(rng.uniform(0, 0.8)), rng)
        if rng.random() < 0.5:
            from repro.vmm.guest import relocate_pages

            relocate_pages(ram, rng.choice(24, size=8, replace=False), rng)
        result = run_migration(ram, checkpoint_path=path)
        assert result.identical
