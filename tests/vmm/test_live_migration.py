"""Byte-level multi-round live migration tests (§3.1's full loop)."""

import numpy as np
import pytest

from repro.vmm.guest import GuestRAM
from repro.vmm.migrate import run_live_migration, write_checkpoint


def populated_ram(num_pages=24, seed=0):
    ram = GuestRAM(num_pages)
    for page in range(num_pages):
        ram.write_pattern(page, seed=seed * 1000 + page)
    return ram


def quiet_writer(ram, round_no):
    return []


class TestLiveMigration:
    def test_quiet_guest_single_round(self, tmp_path):
        ram = populated_ram()
        path = tmp_path / "ckpt"
        write_checkpoint(ram, path)
        result = run_live_migration(ram, path, quiet_writer)
        assert result.identical
        assert result.num_rounds == 1
        assert result.dirty_round_bytes == 0

    def test_writes_between_rounds_resent_and_converge(self, tmp_path):
        ram = populated_ram()
        path = tmp_path / "ckpt"
        write_checkpoint(ram, path)
        rng = np.random.default_rng(3)

        schedule = {1: [0, 1, 2, 3], 2: [1, 2], 3: [2]}

        def writer(guest, round_no):
            pages = schedule.get(round_no, [])
            for page in pages:
                guest.write_page(page, rng.bytes(guest.page_size))
            return pages

        result = run_live_migration(ram, path, writer)
        assert result.identical
        # Rounds shrink: 4 -> 2 -> 1, then the writer goes quiet.
        assert result.dirty_rounds == [4, 2, 1]
        assert result.num_rounds == 4

    def test_round_cap_forces_stop_and_copy(self, tmp_path):
        ram = populated_ram()
        path = tmp_path / "ckpt"
        write_checkpoint(ram, path)
        rng = np.random.default_rng(4)

        def hot_writer(guest, round_no):
            # Never converges on its own.
            pages = list(rng.choice(guest.num_pages, size=6, replace=False))
            for page in pages:
                guest.write_page(int(page), rng.bytes(guest.page_size))
            return pages

        result = run_live_migration(ram, path, hot_writer, max_rounds=4)
        assert result.identical  # stop-and-copy caught the remainder
        assert result.num_rounds <= 5

    def test_rewriting_same_bytes_still_resent(self, tmp_path):
        # Dirty-page semantics in later rounds: VeCycle does not
        # checksum them (§3.1), so a write that restores identical
        # bytes is still retransmitted — correctness over cleverness.
        ram = populated_ram()
        path = tmp_path / "ckpt"
        write_checkpoint(ram, path)

        def same_bytes_writer(guest, round_no):
            if round_no > 1:
                return []
            guest.write_page(0, guest.read_page(0))
            return [0]

        result = run_live_migration(ram, path, same_bytes_writer)
        assert result.identical
        assert result.dirty_rounds == [1]
        assert result.dirty_round_bytes > 4096

    def test_first_round_still_checkpoint_assisted(self, tmp_path):
        ram = populated_ram()
        path = tmp_path / "ckpt"
        write_checkpoint(ram, path)
        result = run_live_migration(ram, path, quiet_writer)
        assert result.first_round.send.pages_full == 0
        assert result.first_round.send.pages_checksum_only == ram.num_pages

    def test_without_checkpoint(self, tmp_path):
        ram = populated_ram()
        result = run_live_migration(ram, None, quiet_writer)
        assert result.identical
        assert result.first_round.send.pages_full == ram.num_pages

    def test_invalid_rounds(self, tmp_path):
        with pytest.raises(ValueError):
            run_live_migration(populated_ram(), None, quiet_writer, max_rounds=0)
