"""Unit tests for the byte-level guest RAM."""

import numpy as np
import pytest

from repro.core.checksum import PAGE_SIZE
from repro.mem.image import MemoryImage
from repro.mem.pagestore import PageStore
from repro.vmm.guest import GuestRAM, mutate_random_pages, relocate_pages


class TestGuestRAM:
    def test_starts_zeroed(self):
        ram = GuestRAM(4)
        assert ram.read_page(0) == bytes(PAGE_SIZE)
        assert ram.size_bytes == 4 * PAGE_SIZE

    def test_write_read_roundtrip(self):
        ram = GuestRAM(4)
        data = bytes(range(256)) * (PAGE_SIZE // 256)
        ram.write_page(2, data)
        assert ram.read_page(2) == data
        assert ram.read_page(1) == bytes(PAGE_SIZE)

    def test_wrong_size_write_rejected(self):
        ram = GuestRAM(4)
        with pytest.raises(ValueError):
            ram.write_page(0, b"short")

    def test_out_of_range_rejected(self):
        ram = GuestRAM(4)
        with pytest.raises(IndexError):
            ram.read_page(4)
        with pytest.raises(IndexError):
            ram.write_page(-1, bytes(PAGE_SIZE))

    def test_write_pattern_deterministic(self):
        a, b = GuestRAM(2), GuestRAM(2)
        a.write_pattern(0, seed=7)
        b.write_pattern(0, seed=7)
        assert a == b
        b.write_pattern(0, seed=8)
        assert a != b

    def test_snapshot_is_copy(self):
        ram = GuestRAM(2)
        snap = ram.snapshot()
        ram.write_pattern(0, seed=1)
        assert snap == bytes(2 * PAGE_SIZE)

    def test_pages_iterator(self):
        ram = GuestRAM(3)
        pages = list(ram.pages())
        assert [p[0] for p in pages] == [0, 1, 2]
        assert all(len(p[1]) == PAGE_SIZE for p in pages)

    def test_equality_against_other_types(self):
        assert GuestRAM(1) != "not a ram"

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            GuestRAM(0)
        with pytest.raises(ValueError):
            GuestRAM(1, page_size=0)


class TestFromImage:
    def test_materializes_content_ids(self):
        image = MemoryImage(8)
        image.write_fresh(np.asarray([0, 1]))
        image.write_duplicate_of(np.asarray([2]), 0)
        store = PageStore()
        ram = GuestRAM.from_image(image, store)
        assert ram.read_page(0) == ram.read_page(2)  # duplicates match
        assert ram.read_page(0) != ram.read_page(1)
        assert ram.read_page(3) == bytes(PAGE_SIZE)  # zero page


class TestMutations:
    def test_mutate_random_pages_fraction(self):
        ram = GuestRAM(20)
        rng = np.random.default_rng(0)
        changed = mutate_random_pages(ram, 0.5, rng)
        assert len(changed) == 10
        non_zero = sum(ram.read_page(i) != bytes(PAGE_SIZE) for i in range(20))
        assert non_zero == 10

    def test_mutate_invalid_fraction(self):
        with pytest.raises(ValueError):
            mutate_random_pages(GuestRAM(4), 1.5, np.random.default_rng(0))

    def test_relocate_preserves_content_multiset(self):
        ram = GuestRAM(6)
        for page in range(6):
            ram.write_pattern(page, seed=page)
        before = sorted(ram.read_page(i) for i in range(6))
        relocate_pages(ram, np.arange(6), np.random.default_rng(3))
        after = sorted(ram.read_page(i) for i in range(6))
        assert before == after
