"""Compression and multi-core checksumming inside the pre-copy simulator."""

import numpy as np
import pytest

from repro.core.checkpoint import Checkpoint
from repro.core.compression import LZO_FAST, NO_COMPRESSION
from repro.core.strategies import QEMU, VECYCLE
from repro.migration.precopy import PrecopyConfig, simulate_migration
from repro.migration.vm import SimVM
from repro.net.link import LAN_10GBE, WAN_CLOUDNET

MIB = 2**20


def make_vm(seed=1):
    vm = SimVM.idle("vm", 128 * MIB, seed=seed)
    vm.image.write_fresh(np.arange(vm.num_pages))
    return vm


class TestCompression:
    def test_compression_halves_wan_traffic(self):
        plain = simulate_migration(make_vm(), QEMU, WAN_CLOUDNET)
        squeezed = simulate_migration(
            make_vm(), QEMU, WAN_CLOUDNET,
            config=PrecopyConfig(compression=LZO_FAST),
        )
        assert squeezed.tx_bytes == pytest.approx(plain.tx_bytes / 2, rel=0.05)
        assert squeezed.total_time_s < plain.total_time_s

    def test_compression_composes_with_vecycle(self):
        # Related work §5: compression "can be combined with VeCycle".
        plain = simulate_migration(
            make_vm_with_updates(), VECYCLE, WAN_CLOUDNET, checkpoint=ckpt_of()
        )
        squeezed = simulate_migration(
            make_vm_with_updates(), VECYCLE, WAN_CLOUDNET, checkpoint=ckpt_of(),
            config=PrecopyConfig(compression=LZO_FAST),
        )
        assert squeezed.tx_bytes < plain.tx_bytes

    def test_no_compression_is_default_and_neutral(self):
        default = simulate_migration(make_vm(), QEMU, WAN_CLOUDNET)
        explicit = simulate_migration(
            make_vm(), QEMU, WAN_CLOUDNET,
            config=PrecopyConfig(compression=NO_COMPRESSION),
        )
        assert default.tx_bytes == explicit.tx_bytes
        assert default.total_time_s == explicit.total_time_s


def make_vm_with_updates(seed=1):
    vm = make_vm(seed)
    vm.write_slots(np.arange(2048))
    return vm


def ckpt_of(seed=1):
    vm = make_vm(seed)
    return Checkpoint(vm_id="vm", fingerprint=vm.fingerprint())


class TestMultiCoreChecksums:
    def test_more_cores_faster_on_fast_link(self):
        # §3.4: multi-threaded execution lifts the checksum-rate bound.
        def run(cores):
            vm = make_vm()
            ckpt = Checkpoint(vm_id="vm", fingerprint=vm.fingerprint())
            return simulate_migration(
                vm, VECYCLE, LAN_10GBE, checkpoint=ckpt,
                config=PrecopyConfig(checksum_cores=cores, announce_known=True),
            )

        single = run(1)
        quad = run(4)
        assert quad.total_time_s < single.total_time_s
        assert quad.tx_bytes == single.tx_bytes  # bytes unchanged

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            PrecopyConfig(checksum_cores=0)
        with pytest.raises(ValueError):
            PrecopyConfig(max_rounds=0)
