"""Tests for combined memory + storage migration."""

import numpy as np
import pytest

from repro.core.checkpoint import Checkpoint
from repro.core.strategies import QEMU, VECYCLE
from repro.migration.vm import SimVM
from repro.migration.wholevm import migrate_whole_vm
from repro.net.link import WAN_CLOUDNET
from repro.storage.blocksync import DiskImage

MIB = 2**20


def make_vm(seed=1):
    vm = SimVM.idle("vm", 64 * MIB, seed=seed)
    vm.image.write_fresh(np.arange(vm.num_pages))
    return vm


def make_disk(num_blocks=256, seed=2):
    disk = DiskImage(num_blocks)
    disk.write(np.arange(num_blocks))
    return disk


class TestWholeVmMigration:
    def test_cold_move_transfers_everything(self):
        vm, disk = make_vm(), make_disk()
        report = migrate_whole_vm(vm, disk, QEMU, WAN_CLOUDNET)
        assert report.bulk_sync.blocks_full == disk.num_blocks
        assert report.memory.pages_full == vm.num_pages
        assert report.tx_bytes > vm.memory_bytes + disk.size_bytes * 0.9

    def test_replica_and_checkpoint_compound(self):
        from repro.storage.disk import SSD_INTEL330

        vm, disk = make_vm(), make_disk()
        checkpoint = Checkpoint(vm_id=vm.vm_id, fingerprint=vm.fingerprint())
        replica = disk.snapshot()
        warm = migrate_whole_vm(
            vm, disk, VECYCLE, WAN_CLOUDNET,
            checkpoint=checkpoint, destination_replica=replica,
            source_disk=SSD_INTEL330, destination_disk=SSD_INTEL330,
        )
        cold_vm, cold_disk = make_vm(), make_disk()
        cold = migrate_whole_vm(
            cold_vm, cold_disk, QEMU, WAN_CLOUDNET,
            source_disk=SSD_INTEL330, destination_disk=SSD_INTEL330,
        )
        assert warm.tx_bytes < cold.tx_bytes / 10
        assert warm.total_time_s < cold.total_time_s / 5
        assert warm.bulk_sync.blocks_reused == disk.num_blocks

    def test_in_flight_disk_writes_land_in_delta(self):
        vm, disk = make_vm(), make_disk()
        replica = disk.snapshot()
        report = migrate_whole_vm(
            vm, disk, VECYCLE, WAN_CLOUDNET,
            checkpoint=Checkpoint(vm_id=vm.vm_id, fingerprint=vm.fingerprint()),
            destination_replica=replica,
            disk_write_blocks_per_s=3.0,
        )
        assert report.final_delta.blocks_full > 0
        assert report.downtime_s > report.memory.downtime_s

    def test_quiet_disk_empty_delta(self):
        vm, disk = make_vm(), make_disk()
        report = migrate_whole_vm(
            vm, disk, VECYCLE, WAN_CLOUDNET,
            destination_replica=disk.snapshot(),
            disk_write_blocks_per_s=0.0,
        )
        assert report.final_delta.blocks_full == 0

    def test_downtime_composition(self):
        vm, disk = make_vm(), make_disk()
        report = migrate_whole_vm(vm, disk, QEMU, WAN_CLOUDNET)
        assert report.downtime_s == pytest.approx(
            report.memory.downtime_s + report.final_delta_s
        )
        assert report.total_time_s >= report.memory.total_time_s

    def test_invalid_write_rate(self):
        with pytest.raises(ValueError):
            migrate_whole_vm(
                make_vm(), make_disk(), QEMU, WAN_CLOUDNET,
                disk_write_blocks_per_s=-1,
            )

    def test_summary(self):
        vm, disk = make_vm(), make_disk()
        report = migrate_whole_vm(vm, disk, QEMU, WAN_CLOUDNET)
        assert "whole-vm[qemu]" in report.summary()
