"""Unit tests for the post-copy migration model."""

import numpy as np
import pytest

from repro.core.checkpoint import Checkpoint
from repro.core.strategies import QEMU, VECYCLE
from repro.migration.postcopy import PostcopyConfig, simulate_postcopy
from repro.migration.precopy import simulate_migration
from repro.migration.vm import SimVM
from repro.net.link import LAN_1GBE, WAN_CLOUDNET

MIB = 2**20


def make_vm(size_mib=64, dirty_rate=50, seed=1):
    vm = SimVM("vm", size_mib * MIB, dirty_rate_pages_per_s=dirty_rate, seed=seed)
    vm.image.write_fresh(np.arange(vm.num_pages))
    return vm


def checkpoint_of(vm):
    return Checkpoint(vm_id=vm.vm_id, fingerprint=vm.fingerprint())


class TestPostcopyBasics:
    def test_downtime_independent_of_memory_size(self):
        small = simulate_postcopy(make_vm(32), QEMU, LAN_1GBE)
        large = simulate_postcopy(make_vm(256), QEMU, LAN_1GBE)
        assert small.downtime_s == large.downtime_s
        # ...unlike the fill time.
        assert large.fill_time_s > small.fill_time_s

    def test_all_pages_pushed_without_checkpoint(self):
        vm = make_vm()
        report = simulate_postcopy(vm, QEMU, LAN_1GBE)
        assert report.pages_pushed == vm.num_pages
        assert report.pages_reused == 0
        assert report.tx_bytes >= vm.memory_bytes

    def test_faults_scale_with_access_rate(self):
        quiet = simulate_postcopy(
            make_vm(), QEMU, WAN_CLOUDNET,
            config=PostcopyConfig(access_rate_pages_per_s=10),
        )
        busy = simulate_postcopy(
            make_vm(), QEMU, WAN_CLOUDNET,
            config=PostcopyConfig(access_rate_pages_per_s=1000),
        )
        assert busy.remote_faults > 10 * quiet.remote_faults
        assert busy.fault_stall_s > quiet.fault_stall_s

    def test_idle_guest_no_faults(self):
        vm = make_vm(dirty_rate=0)
        report = simulate_postcopy(vm, QEMU, LAN_1GBE)
        assert report.remote_faults == 0


class TestCheckpointAssistedPostcopy:
    def test_identical_memory_fills_instantly(self):
        vm = make_vm(dirty_rate=0)
        report = simulate_postcopy(
            vm, VECYCLE, WAN_CLOUDNET, checkpoint=checkpoint_of(vm),
            config=PostcopyConfig(announce_known=True),
        )
        assert report.pages_reused == vm.num_pages
        assert report.pages_pushed == 0
        assert report.tx_bytes == 0
        assert report.fill_time_s == 0.0

    def test_checkpoint_shrinks_fill_and_faults(self):
        vm = make_vm(dirty_rate=200)
        ckpt = checkpoint_of(vm)
        vm.run_for(1800)

        plain_vm = make_vm(dirty_rate=200)
        plain_vm.run_for(1800)
        plain = simulate_postcopy(plain_vm, QEMU, WAN_CLOUDNET)
        assisted = simulate_postcopy(vm, VECYCLE, WAN_CLOUDNET, checkpoint=ckpt)
        assert assisted.fill_time_s < plain.fill_time_s / 2
        assert assisted.remote_faults < plain.remote_faults
        assert assisted.tx_bytes < plain.tx_bytes / 2

    def test_announce_accounted_unless_known(self):
        vm = make_vm(dirty_rate=0)
        ckpt = checkpoint_of(vm)
        unknown = simulate_postcopy(vm, VECYCLE, WAN_CLOUDNET, checkpoint=ckpt)
        assert unknown.announce_bytes > 0
        known = simulate_postcopy(
            vm, VECYCLE, WAN_CLOUDNET, checkpoint=ckpt,
            config=PostcopyConfig(announce_known=True),
        )
        assert known.announce_bytes == 0

    def test_checkpoint_size_mismatch_rejected(self):
        vm = make_vm(32)
        other = make_vm(64)
        with pytest.raises(ValueError):
            simulate_postcopy(vm, VECYCLE, LAN_1GBE, checkpoint=checkpoint_of(other))


class TestPrePostComparison:
    def test_postcopy_downtime_beats_precopy_on_hot_guest(self):
        # The classic trade: a write-hot guest forces pre-copy into a
        # long stop-and-copy, while post-copy's downtime stays constant.
        hot_pre = SimVM("vm", 64 * MIB, dirty_rate_pages_per_s=5000,
                        working_set_fraction=0.5, seed=2)
        hot_pre.image.write_fresh(np.arange(hot_pre.num_pages))
        pre = simulate_migration(hot_pre, QEMU, WAN_CLOUDNET)

        hot_post = SimVM("vm", 64 * MIB, dirty_rate_pages_per_s=5000,
                         working_set_fraction=0.5, seed=2)
        hot_post.image.write_fresh(np.arange(hot_post.num_pages))
        post = simulate_postcopy(hot_post, QEMU, WAN_CLOUDNET)
        assert post.downtime_s < pre.downtime_s

    def test_postcopy_never_retransmits(self):
        # Post-copy sends each page at most once; pre-copy resends
        # dirty pages every round.
        vm = SimVM("vm", 64 * MIB, dirty_rate_pages_per_s=2000,
                   working_set_fraction=0.3, seed=3)
        vm.image.write_fresh(np.arange(vm.num_pages))
        pre = simulate_migration(vm, QEMU, WAN_CLOUDNET)

        vm2 = SimVM("vm", 64 * MIB, dirty_rate_pages_per_s=2000,
                    working_set_fraction=0.3, seed=3)
        vm2.image.write_fresh(np.arange(vm2.num_pages))
        post = simulate_postcopy(vm2, QEMU, WAN_CLOUDNET)
        assert post.tx_bytes < pre.tx_bytes
