"""Unit tests for repro.migration.vm."""

import numpy as np
import pytest

from repro.migration.vm import SimVM, expected_distinct

MIB = 2**20


class TestExpectedDistinct:
    def test_zero_writes(self):
        assert expected_distinct(0, 100) == 0

    def test_zero_pool(self):
        assert expected_distinct(10, 0) == 0

    def test_few_writes_mostly_distinct(self):
        assert expected_distinct(10, 100000) == 10

    def test_many_writes_saturate_pool(self):
        assert expected_distinct(10**6, 100) == 100

    def test_monotone_in_writes(self):
        values = [expected_distinct(w, 1000) for w in (10, 100, 1000, 10000)]
        assert values == sorted(values)
        assert all(v <= 1000 for v in values)


class TestSimVM:
    def test_construction(self):
        vm = SimVM("vm", 4 * MIB, seed=1)
        assert vm.num_pages == 1024
        assert vm.memory_bytes == 4 * MIB

    def test_idle_vm_never_dirties(self):
        vm = SimVM.idle("vm", 4 * MIB)
        assert vm.run_for(3600).size == 0
        assert vm.clock_s == 3600

    def test_active_vm_dirties_in_working_set(self):
        vm = SimVM("vm", 4 * MIB, dirty_rate_pages_per_s=100,
                   working_set_fraction=0.1, seed=2)
        dirtied = vm.run_for(1.0)
        assert dirtied.size > 0
        assert set(dirtied.tolist()) <= set(vm.working_set.tolist())

    def test_dirty_slots_tracked_in_generations(self):
        vm = SimVM("vm", 4 * MIB, dirty_rate_pages_per_s=50, seed=3)
        snapshot = vm.tracker.snapshot()
        dirtied = vm.run_for(2.0)
        assert set(vm.tracker.dirty_since(snapshot).tolist()) == set(
            np.unique(dirtied).tolist()
        )

    def test_write_slots_changes_content(self):
        vm = SimVM.idle("vm", 4 * MIB)
        before = vm.fingerprint()
        vm.write_slots(np.asarray([0, 5]))
        after = vm.fingerprint()
        assert list(after.dirty_slots(since=before)) == [0, 5]

    def test_write_empty_slots_noop(self):
        vm = SimVM.idle("vm", 4 * MIB)
        snapshot = vm.tracker.snapshot()
        vm.write_slots(np.asarray([], dtype=np.int64))
        assert vm.tracker.dirty_since(snapshot).size == 0

    def test_fingerprint_carries_clock(self):
        vm = SimVM.idle("vm", 4 * MIB)
        vm.run_for(120.0)
        assert vm.fingerprint().timestamp == 120.0

    def test_negative_time_rejected(self):
        vm = SimVM.idle("vm", 4 * MIB)
        with pytest.raises(ValueError):
            vm.run_for(-1)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            SimVM("vm", 4 * MIB, dirty_rate_pages_per_s=-1)
        with pytest.raises(ValueError):
            SimVM("vm", 4 * MIB, working_set_fraction=0.0)

    def test_from_image_wraps_existing_memory(self, small_image):
        vm = SimVM.from_image("vm", small_image)
        assert vm.image is small_image
        assert vm.num_pages == small_image.num_pages

    def test_determinism(self):
        runs = []
        for _ in range(2):
            vm = SimVM("vm", 4 * MIB, dirty_rate_pages_per_s=100, seed=9)
            runs.append(np.sort(vm.run_for(1.0)))
        assert (runs[0] == runs[1]).all()
