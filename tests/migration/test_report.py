"""Unit tests for migration reports."""

from repro.migration.report import MigrationReport, RoundStats


class TestMigrationReport:
    def _report(self):
        report = MigrationReport(
            strategy="vecycle", vm_id="vm", memory_bytes=1 << 30, link="lan-1gbe"
        )
        report.tx_bytes = 1 << 20
        report.announce_bytes = 1 << 10
        report.rounds = [
            RoundStats(1, 100, 5, 1 << 19, 0.5, 10),
            RoundStats(2, 10, 0, 1 << 19, 0.05, 0),
        ]
        return report

    def test_total_bytes_includes_announce(self):
        report = self._report()
        assert report.total_bytes == (1 << 20) + (1 << 10)

    def test_num_rounds(self):
        assert self._report().num_rounds == 2

    def test_tx_gib(self):
        assert self._report().tx_gib == (1 << 20) / (1 << 30)

    def test_summary_mentions_strategy_and_link(self):
        summary = self._report().summary()
        assert "vecycle" in summary
        assert "lan-1gbe" in summary
