"""Checkpoint reuse across VM memory resizes."""

import numpy as np
import pytest

from repro.core.checkpoint import Checkpoint
from repro.core.fingerprint import Fingerprint, ZERO_HASH, resize_fingerprint
from repro.core.strategies import VECYCLE
from repro.migration.precopy import PrecopyConfig, simulate_migration
from repro.migration.vm import SimVM
from repro.net.link import LAN_1GBE

MIB = 2**20


class TestResizeFingerprint:
    def test_same_size_returns_same_object(self):
        fingerprint = Fingerprint(hashes=np.arange(4, dtype=np.uint64))
        assert resize_fingerprint(fingerprint, 4) is fingerprint

    def test_grow_pads_with_zero_pages(self):
        fingerprint = Fingerprint(hashes=np.asarray([5, 6], dtype=np.uint64))
        grown = resize_fingerprint(fingerprint, 4)
        assert grown.num_pages == 4
        assert list(grown.hashes) == [5, 6, int(ZERO_HASH), int(ZERO_HASH)]

    def test_shrink_truncates(self):
        fingerprint = Fingerprint(hashes=np.asarray([5, 6, 7], dtype=np.uint64))
        shrunk = resize_fingerprint(fingerprint, 2)
        assert list(shrunk.hashes) == [5, 6]

    def test_original_unmodified(self):
        fingerprint = Fingerprint(hashes=np.asarray([5, 6], dtype=np.uint64))
        resize_fingerprint(fingerprint, 8)
        assert fingerprint.num_pages == 2

    def test_timestamp_preserved(self):
        fingerprint = Fingerprint(
            hashes=np.asarray([1], dtype=np.uint64), timestamp=42.0
        )
        assert resize_fingerprint(fingerprint, 3).timestamp == 42.0

    def test_invalid_size(self):
        fingerprint = Fingerprint(hashes=np.asarray([1], dtype=np.uint64))
        with pytest.raises(ValueError):
            resize_fingerprint(fingerprint, 0)


class TestResizedMigration:
    def _small_vm_checkpoint(self):
        """Checkpoint of the VM when it had 8 MiB of RAM."""
        old = SimVM.idle("vm", 8 * MIB, seed=1)
        old.image.write_fresh(np.arange(old.num_pages))
        return old, Checkpoint(vm_id="vm", fingerprint=old.fingerprint())

    def test_rejected_by_default(self):
        old, checkpoint = self._small_vm_checkpoint()
        grown = SimVM.idle("vm", 16 * MIB, seed=1)
        with pytest.raises(ValueError, match="allow_resized_checkpoint"):
            simulate_migration(grown, VECYCLE, LAN_1GBE, checkpoint=checkpoint)

    def test_grown_vm_reuses_old_content(self):
        old, checkpoint = self._small_vm_checkpoint()
        grown = SimVM.idle("vm", 16 * MIB, seed=1)
        # The grown VM keeps the old content in its first half; the new
        # half is zero (ballooned-in memory).
        grown.image.restore(
            resize_fingerprint(old.fingerprint(), grown.num_pages)
        )
        report = simulate_migration(
            grown, VECYCLE, LAN_1GBE, checkpoint=checkpoint,
            config=PrecopyConfig(allow_resized_checkpoint=True),
        )
        # Old content reused; the zero half matches the padded zeros.
        assert report.pages_full == 0
        assert report.pages_checksum_only == grown.num_pages

    def test_shrunk_vm_reuses_surviving_content(self):
        big = SimVM.idle("vm", 16 * MIB, seed=2)
        big.image.write_fresh(np.arange(big.num_pages))
        checkpoint = Checkpoint(vm_id="vm", fingerprint=big.fingerprint())
        small = SimVM.idle("vm", 8 * MIB, seed=2)
        small.image.restore(
            resize_fingerprint(big.fingerprint(), small.num_pages)
        )
        report = simulate_migration(
            small, VECYCLE, LAN_1GBE, checkpoint=checkpoint,
            config=PrecopyConfig(allow_resized_checkpoint=True),
        )
        assert report.pages_full == 0

    def test_partial_overlap_after_resize(self):
        old, checkpoint = self._small_vm_checkpoint()
        grown = SimVM.idle("vm", 16 * MIB, seed=3)
        grown.image.restore(
            resize_fingerprint(old.fingerprint(), grown.num_pages)
        )
        # New workload fills half of the new region with fresh data.
        fresh = np.arange(old.num_pages, old.num_pages + 1024)
        grown.write_slots(fresh)
        report = simulate_migration(
            grown, VECYCLE, LAN_1GBE, checkpoint=checkpoint,
            config=PrecopyConfig(allow_resized_checkpoint=True),
        )
        assert report.pages_full == 1024
        assert report.pages_checksum_only == grown.num_pages - 1024
