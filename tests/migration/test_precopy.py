"""Unit tests for the pre-copy migration simulator."""

import numpy as np
import pytest

from repro.core.checkpoint import Checkpoint
from repro.core.strategies import (
    DEDUP,
    MIYAKODORI,
    QEMU,
    VECYCLE,
    VECYCLE_DEDUP,
    VECYCLE_DIRTY,
)
from repro.migration.precopy import PrecopyConfig, simulate_migration
from repro.migration.vm import SimVM
from repro.net.link import LAN_1GBE, WAN_CLOUDNET
from repro.storage.disk import HDD_HD204UI, SSD_INTEL330

MIB = 2**20


def checkpoint_of(vm):
    return Checkpoint(
        vm_id=vm.vm_id,
        fingerprint=vm.fingerprint(),
        generation_vector=vm.tracker.snapshot(),
    )


class TestIdleVmBestCase:
    def test_vecycle_much_faster_than_qemu(self, small_vm):
        ckpt = checkpoint_of(small_vm)
        fast = simulate_migration(small_vm, VECYCLE, LAN_1GBE, checkpoint=ckpt)
        slow = simulate_migration(small_vm, QEMU, LAN_1GBE)
        assert fast.tx_bytes < slow.tx_bytes / 10
        assert fast.total_time_s < slow.total_time_s

    def test_identical_memory_sends_no_full_pages(self, small_vm):
        ckpt = checkpoint_of(small_vm)
        report = simulate_migration(small_vm, VECYCLE, LAN_1GBE, checkpoint=ckpt)
        assert report.pages_full == 0
        assert report.pages_checksum_only == small_vm.num_pages
        assert report.similarity == pytest.approx(1.0)

    def test_all_reuse_is_in_place_when_nothing_moved(self, small_vm):
        ckpt = checkpoint_of(small_vm)
        report = simulate_migration(small_vm, VECYCLE, LAN_1GBE, checkpoint=ckpt)
        assert report.pages_reused_from_disk == 0
        assert report.pages_reused_in_place == small_vm.num_pages


class TestStrategies:
    def test_qemu_sends_everything(self, small_vm):
        report = simulate_migration(small_vm, QEMU, LAN_1GBE)
        assert report.pages_full == small_vm.num_pages
        assert report.tx_bytes > small_vm.memory_bytes

    def test_dedup_sends_less_than_full(self, small_vm):
        full = simulate_migration(small_vm, QEMU, LAN_1GBE)
        deduped = simulate_migration(small_vm, DEDUP, LAN_1GBE)
        assert deduped.tx_bytes < full.tx_bytes
        assert deduped.pages_ref > 0

    def test_miyakodori_skips_clean_pages(self, small_vm):
        ckpt = checkpoint_of(small_vm)
        small_vm.write_slots(np.arange(16))
        report = simulate_migration(small_vm, MIYAKODORI, LAN_1GBE, checkpoint=ckpt)
        assert report.pages_full == 16
        assert report.pages_skipped == small_vm.num_pages - 16

    def test_vecycle_dirty_combination_reduces_checksum_work(self, small_vm):
        ckpt = checkpoint_of(small_vm)
        small_vm.write_slots(np.arange(16))
        plain = simulate_migration(small_vm, VECYCLE, LAN_1GBE, checkpoint=ckpt)
        combo = simulate_migration(small_vm, VECYCLE_DIRTY, LAN_1GBE, checkpoint=ckpt)
        assert combo.pages_full == plain.pages_full

    def test_vecycle_dedup_no_worse_than_vecycle(self, small_vm):
        ckpt = checkpoint_of(small_vm)
        small_vm.write_slots(np.arange(32))
        plain = simulate_migration(small_vm, VECYCLE, LAN_1GBE, checkpoint=ckpt)
        deduped = simulate_migration(small_vm, VECYCLE_DEDUP, LAN_1GBE, checkpoint=ckpt)
        assert deduped.pages_full <= plain.pages_full


class TestFallbacks:
    def test_vecycle_without_checkpoint_degrades_to_full(self, small_vm):
        report = simulate_migration(small_vm, VECYCLE, LAN_1GBE, checkpoint=None)
        assert report.pages_full == small_vm.num_pages
        assert report.pages_checksum_only == 0

    def test_vecycle_dedup_without_checkpoint_degrades_to_dedup(self, small_vm):
        report = simulate_migration(small_vm, VECYCLE_DEDUP, LAN_1GBE, checkpoint=None)
        assert report.pages_ref > 0
        assert report.pages_checksum_only == 0

    def test_checkpoint_size_mismatch_rejected(self, small_vm):
        other = SimVM.idle("other", 4 * MIB)
        with pytest.raises(ValueError):
            simulate_migration(
                small_vm, VECYCLE, LAN_1GBE, checkpoint=checkpoint_of(other)
            )


class TestRelocatedPages:
    def test_relocated_content_read_from_disk(self, small_vm, rng):
        ckpt = checkpoint_of(small_vm)
        # Move content around without changing it.
        slots = np.arange(0, 64)
        small_vm.image.relocate(slots, rng)
        report = simulate_migration(small_vm, VECYCLE, LAN_1GBE, checkpoint=ckpt)
        assert report.pages_full == 0
        assert report.pages_reused_from_disk > 0
        assert (
            report.pages_reused_from_disk + report.pages_reused_in_place
            == small_vm.num_pages
        )


class TestPrecopyDynamics:
    def _busy_vm(self):
        vm = SimVM(
            "busy", 32 * MIB, dirty_rate_pages_per_s=2000,
            working_set_fraction=0.05, seed=11,
        )
        vm.image.write_fresh(np.arange(vm.num_pages))
        return vm

    def test_busy_vm_needs_multiple_rounds(self):
        vm = self._busy_vm()
        report = simulate_migration(vm, QEMU, WAN_CLOUDNET)
        assert report.num_rounds >= 2

    def test_dirty_rounds_shrink(self):
        vm = self._busy_vm()
        report = simulate_migration(vm, QEMU, WAN_CLOUDNET)
        sent = [r.pages_sent for r in report.rounds[1:]]
        assert sent == sorted(sent, reverse=True)

    def test_downtime_respects_target(self):
        vm = self._busy_vm()
        config = PrecopyConfig(downtime_target_s=0.5, switchover_s=0.02)
        report = simulate_migration(vm, QEMU, LAN_1GBE, config=config)
        assert report.downtime_s <= 0.5 + 0.02 + LAN_1GBE.rtt_s + 0.05

    def test_max_rounds_cap(self):
        vm = SimVM(
            "hopeless", 32 * MIB, dirty_rate_pages_per_s=1e9,
            working_set_fraction=1.0, seed=1,
        )
        config = PrecopyConfig(max_rounds=5)
        report = simulate_migration(vm, QEMU, WAN_CLOUDNET, config=config)
        assert report.num_rounds <= 6  # 5 copy rounds + stop-and-copy

    def test_traffic_accounting_consistent(self):
        vm = self._busy_vm()
        report = simulate_migration(vm, QEMU, LAN_1GBE)
        assert report.tx_bytes == sum(r.bytes_sent for r in report.rounds)


class TestSetupAndAnnounce:
    def test_setup_time_excluded_from_migration_time(self, small_vm):
        ckpt = checkpoint_of(small_vm)
        report = simulate_migration(small_vm, VECYCLE, LAN_1GBE, checkpoint=ckpt)
        assert report.setup_time_s > 0
        assert report.checkpoint_write_time_s > 0
        # Total time is checksum-bound here, far below setup+copy.
        assert report.total_time_s < report.setup_time_s + 10

    def test_announce_skipped_when_known(self, small_vm):
        ckpt = checkpoint_of(small_vm)
        known = simulate_migration(
            small_vm, VECYCLE, LAN_1GBE, checkpoint=ckpt,
            config=PrecopyConfig(announce_known=True),
        )
        unknown = simulate_migration(
            small_vm, VECYCLE, LAN_1GBE, checkpoint=ckpt,
            config=PrecopyConfig(announce_known=False),
        )
        assert known.announce_bytes == 0
        assert unknown.announce_bytes > 0
        assert unknown.total_bytes > known.total_bytes

    def test_ssd_vs_hdd_does_not_change_migration_time(self, small_vm):
        # §4.4: storing the checkpoint on SSD had no impact.
        ckpt = checkpoint_of(small_vm)
        hdd = simulate_migration(
            small_vm, VECYCLE, LAN_1GBE, checkpoint=ckpt, dest_disk=HDD_HD204UI
        )
        ssd = simulate_migration(
            small_vm, VECYCLE, LAN_1GBE, checkpoint=ckpt, dest_disk=SSD_INTEL330
        )
        assert hdd.total_time_s == pytest.approx(ssd.total_time_s, rel=0.05)
