"""Tests for host-aware orchestration (engine + ping-pong)."""

import numpy as np
import pytest

from repro.cluster.host import Host
from repro.core.strategies import QEMU, VECYCLE
from repro.migration.engine import migrate_between_hosts, ping_pong
from repro.migration.vm import SimVM

from repro.net.link import LAN_1GBE

MIB = 2**20


@pytest.fixture
def hosts():
    return Host(name="a"), Host(name="b")


def make_vm(seed=3):
    vm = SimVM("vm0", 16 * MIB, dirty_rate_pages_per_s=5, seed=seed)
    vm.image.write_fresh(np.arange(vm.num_pages))
    return vm


class TestMigrateBetweenHosts:
    def test_first_visit_full_transfer(self, hosts):
        a, b = hosts
        vm = make_vm()
        report = migrate_between_hosts(vm, a, b, VECYCLE, LAN_1GBE)
        assert report.pages_full == vm.num_pages

    def test_source_stores_checkpoint(self, hosts):
        a, b = hosts
        vm = make_vm()
        migrate_between_hosts(vm, a, b, VECYCLE, LAN_1GBE)
        stored = a.checkpoint_for("vm0")
        assert stored is not None
        assert stored.generation_vector is not None

    def test_return_migration_reuses_checkpoint(self, hosts):
        a, b = hosts
        vm = make_vm()
        migrate_between_hosts(vm, a, b, VECYCLE, LAN_1GBE)
        back = migrate_between_hosts(vm, b, a, VECYCLE, LAN_1GBE)
        assert back.pages_checksum_only > 0.9 * vm.num_pages
        assert back.tx_bytes < vm.memory_bytes / 10

    def test_ping_pong_shortcut_skips_announce(self, hosts):
        a, b = hosts
        vm = make_vm()
        migrate_between_hosts(vm, a, b, VECYCLE, LAN_1GBE)
        back = migrate_between_hosts(vm, b, a, VECYCLE, LAN_1GBE)
        # b learned a's hashes while receiving, so no announce needed.
        assert back.announce_bytes == 0

    def test_same_host_rejected(self, hosts):
        a, _ = hosts
        with pytest.raises(ValueError):
            migrate_between_hosts(make_vm(), a, a, VECYCLE, LAN_1GBE)

    def test_qemu_migration_still_stores_checkpoint(self, hosts):
        # Checkpoints are written regardless of the strategy in use so a
        # later VeCycle migration can benefit.
        a, b = hosts
        migrate_between_hosts(make_vm(), a, b, QEMU, LAN_1GBE)
        assert a.checkpoint_for("vm0") is not None


class TestPingPong:
    def test_round_trip_count(self, hosts):
        a, b = hosts
        reports = ping_pong(make_vm(), a, b, VECYCLE, LAN_1GBE, round_trips=2)
        assert len(reports) == 4

    def test_later_migrations_cheaper_than_first(self, hosts):
        a, b = hosts
        reports = ping_pong(make_vm(), a, b, VECYCLE, LAN_1GBE, round_trips=2)
        first = reports[0]
        for later in reports[1:]:
            assert later.tx_bytes < first.tx_bytes / 5

    def test_between_migrations_hook(self, hosts):
        a, b = hosts
        seen = []

        def hook(vm, index):
            seen.append(index)
            vm.write_slots(np.arange(8))

        reports = ping_pong(
            make_vm(), a, b, VECYCLE, LAN_1GBE, round_trips=1, between_migrations=hook
        )
        assert seen == [0, 1]
        # The 8 updated pages (plus in-flight dirtying) must be re-sent.
        assert reports[1].pages_full >= 8

    def test_invalid_round_trips(self, hosts):
        a, b = hosts
        with pytest.raises(ValueError):
            ping_pong(make_vm(), a, b, VECYCLE, LAN_1GBE, round_trips=0)


class TestHostBookkeeping:
    def test_learn_and_forget(self):
        host = Host(name="x")
        host.learn_peer_hashes("vm1", "y")
        assert host.knows_peer_hashes("vm1", "y")
        assert not host.knows_peer_hashes("vm1", "z")
        host.forget_peer("y")
        assert not host.knows_peer_hashes("vm1", "y")
