"""Crash-matrix coverage: kill the repository at every fault point.

Each test arms :attr:`CheckpointRepository.fault_hook` so the write path
dies (the in-process stand-in for ``kill -9``) at one named instant
between a temp-file write and its rename, then re-opens the same
directory — a fresh process recovering after the crash — and asserts
the invariant the repository promises: *previously committed
checkpoints are intact bit-identically; at most the in-flight one is
lost; corruption is quarantined, never fatal.*

Set ``REPRO_CRASH_REPEATS`` (the CI corruption-injection job does) to
run each scenario multiple times with the fault re-armed.
"""

import os

import pytest

from repro.core.checksum import MD5
from repro.storage.repository import (
    FAULT_MANIFEST_COMMITTED,
    FAULT_MANIFEST_WRITTEN,
    FAULT_POINTS,
    FAULT_SEGMENT_WRITTEN,
    FAULT_SESSION_WRITTEN,
    CheckpointManifest,
    CheckpointRepository,
)

REPEATS = max(1, int(os.environ.get("REPRO_CRASH_REPEATS", "1")))


class KillNine(BaseException):
    """Simulated hard kill: not a catchable-by-accident Exception."""


def page(tag: bytes) -> bytes:
    return (tag * 64)[:64]


def digest(tag: bytes) -> bytes:
    return MD5.digest(page(tag))


def commit(repo, vm_id, tags, timestamp=0.0):
    digests = [digest(t) for t in tags]
    for tag, d in zip(tags, digests):
        repo.put_page(d, page(tag))
    repo.commit_checkpoint(
        CheckpointManifest(
            vm_id=vm_id, slot_digests=digests, page_size=64, timestamp=timestamp
        )
    )
    return digests


def arm(repo, point):
    """Crash the repository the next time it reaches ``point``."""

    def hook(reached):
        if reached == point:
            raise KillNine(point)

    repo.fault_hook = hook


def assert_committed_intact(root, vm_id, tags):
    """Re-open ``root`` and check ``vm_id`` recovered bit-identically."""
    repo = CheckpointRepository(root)
    report = repo.recover()
    by_vm = {m.vm_id: m for m in report.checkpoints}
    assert vm_id in by_vm
    manifest = by_vm[vm_id]
    assert manifest.slot_digests == [digest(t) for t in tags]
    for tag in tags:
        assert repo.get_page(digest(tag)) == page(tag)
    return repo, report


@pytest.mark.parametrize("repeat", range(REPEATS))
@pytest.mark.parametrize("point", FAULT_POINTS)
class TestCrashMatrix:
    def test_crash_loses_at_most_the_inflight_checkpoint(
        self, tmp_path, point, repeat
    ):
        repo = CheckpointRepository(tmp_path)
        commit(repo, "committed", [b"a", b"b"])

        arm(repo, point)
        with pytest.raises(KillNine):
            if point == FAULT_SESSION_WRITTEN:
                repo.save_session("s1", {"result": {"ok": True}})
            else:
                commit(repo, "inflight", [b"b", b"c"])

        recovered, report = assert_committed_intact(
            tmp_path, "committed", [b"a", b"b"]
        )
        assert not report.quarantined
        if point == FAULT_MANIFEST_COMMITTED:
            # The manifest rename IS the commit: crashing after it means
            # the checkpoint survived.
            assert recovered.load_manifest("inflight") is not None
        else:
            assert recovered.load_manifest("inflight") is None
        if point == FAULT_SESSION_WRITTEN:
            assert report.sessions == {}

    def test_recovery_after_crash_can_commit_again(self, tmp_path, point, repeat):
        repo = CheckpointRepository(tmp_path)
        commit(repo, "vm", [b"a"])
        arm(repo, point)
        with pytest.raises(KillNine):
            if point == FAULT_SESSION_WRITTEN:
                repo.save_session("s1", {"result": {"ok": False}})
            else:
                commit(repo, "vm2", [b"b"])

        reborn = CheckpointRepository(tmp_path)
        reborn.recover()
        commit(reborn, "vm2", [b"b", b"c"])
        reborn.save_session("s1", {"result": {"ok": True}})
        final = CheckpointRepository(tmp_path)
        report = final.recover()
        assert {m.vm_id for m in report.checkpoints} == {"vm", "vm2"}
        assert report.sessions["s1"] == {"result": {"ok": True}}


class TestCrashDuringReplacement:
    """Replacing a VM's checkpoint must never leave the VM with none."""

    @pytest.mark.parametrize(
        "point", [FAULT_SEGMENT_WRITTEN, FAULT_MANIFEST_WRITTEN]
    )
    def test_old_checkpoint_survives_pre_commit_crash(self, tmp_path, point):
        repo = CheckpointRepository(tmp_path)
        commit(repo, "vm", [b"old1", b"old2"])
        arm(repo, point)
        with pytest.raises(KillNine):
            commit(repo, "vm", [b"new1", b"new2"])
        assert_committed_intact(tmp_path, "vm", [b"old1", b"old2"])

    def test_post_commit_crash_keeps_the_new_checkpoint(self, tmp_path):
        repo = CheckpointRepository(tmp_path)
        commit(repo, "vm", [b"old1"])
        arm(repo, FAULT_MANIFEST_COMMITTED)
        with pytest.raises(KillNine):
            commit(repo, "vm", [b"new1"])
        recovered, _ = assert_committed_intact(tmp_path, "vm", [b"new1"])
        # The replaced checkpoint's exclusive segment was never released
        # (the crash beat the release); gc reclaims it.
        assert recovered.gc() == 64
        assert_committed_intact(tmp_path, "vm", [b"new1"])


class TestOrphanSweep:
    def test_gc_reclaims_segments_of_the_lost_checkpoint(self, tmp_path):
        repo = CheckpointRepository(tmp_path)
        commit(repo, "vm", [b"a"])
        arm(repo, FAULT_MANIFEST_WRITTEN)
        with pytest.raises(KillNine):
            commit(repo, "vm2", [b"b", b"c"])

        reborn = CheckpointRepository(tmp_path)
        report = reborn.recover()
        assert report.orphan_segments == 2
        assert reborn.gc() == 128
        assert reborn.get_page(digest(b"a")) == page(b"a")
