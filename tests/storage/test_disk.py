"""Unit tests for repro.storage.disk."""

import pytest

from repro.core.checksum import PAGE_SIZE
from repro.storage.disk import HDD_HD204UI, SSD_INTEL330, TMPFS, Disk, get_disk

GIB = 2**30


class TestPresets:
    def test_registry(self):
        assert get_disk("hdd-hd204ui") is HDD_HD204UI
        assert get_disk("ssd-intel330") is SSD_INTEL330
        with pytest.raises(KeyError):
            get_disk("floppy")

    def test_ssd_faster_than_hdd(self):
        checkpoint = 4 * GIB
        assert SSD_INTEL330.sequential_read_time(checkpoint) < (
            HDD_HD204UI.sequential_read_time(checkpoint)
        )
        assert SSD_INTEL330.random_read_time(1000) < HDD_HD204UI.random_read_time(1000)

    def test_tmpfs_fastest(self):
        assert TMPFS.sequential_read_time(GIB) < SSD_INTEL330.sequential_read_time(GIB)


class TestCostModel:
    def test_sequential_times_linear(self):
        assert HDD_HD204UI.sequential_read_time(2 * GIB) == pytest.approx(
            2 * HDD_HD204UI.sequential_read_time(GIB)
        )
        assert HDD_HD204UI.sequential_write_time(GIB) > 0

    def test_random_reads_seek_bound_on_hdd(self):
        # 75 IOPS: a thousand scattered 4 KiB reads ≈ 13 s.
        assert HDD_HD204UI.random_read_time(1000) == pytest.approx(1000 / 75)

    def test_random_reads_bandwidth_bound_for_large_blocks(self):
        # Very large "random" blocks degenerate to sequential bandwidth.
        time = SSD_INTEL330.random_read_time(10, block_size=64 * 2**20)
        assert time == pytest.approx(10 * 64 * 2**20 / SSD_INTEL330.seq_read_bps)

    def test_zero_work_zero_time(self):
        assert HDD_HD204UI.sequential_read_time(0) == 0.0
        assert HDD_HD204UI.random_read_time(0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            HDD_HD204UI.sequential_read_time(-1)
        with pytest.raises(ValueError):
            HDD_HD204UI.sequential_write_time(-1)
        with pytest.raises(ValueError):
            HDD_HD204UI.random_read_time(-1)

    def test_invalid_disk_params(self):
        with pytest.raises(ValueError):
            Disk(name="x", seq_read_bps=0, seq_write_bps=1, random_read_iops=1)


class TestPaperObservation:
    def test_checkpoint_read_not_bottleneck_on_lan(self):
        # §4.4: HDD vs SSD made no difference — even the HDD streams a
        # checkpoint faster than the gigabit wire delivers pages.
        from repro.net.link import LAN_1GBE

        checkpoint = 4 * GIB
        assert HDD_HD204UI.sequential_read_time(checkpoint) < (
            checkpoint / LAN_1GBE.effective_bandwidth
        )

    def test_page_size_default(self):
        assert HDD_HD204UI.random_read_time(1, block_size=PAGE_SIZE) > 0
