"""Unit tests for the durable checkpoint repository."""

import json

import pytest

from repro.core.checksum import MD5
from repro.obs.metrics import get_registry
from repro.storage.repository import (
    CheckpointManifest,
    CheckpointRepository,
    RepositoryError,
)


def page(tag: bytes, size: int = 64) -> bytes:
    return (tag * size)[:size]


def digest(tag: bytes, size: int = 64) -> bytes:
    return MD5.digest(page(tag, size))


def put_pages(repo, *tags):
    digests = []
    for tag in tags:
        d = digest(tag)
        repo.put_page(d, page(tag))
        digests.append(d)
    return digests


def commit(repo, vm_id, tags, timestamp=0.0):
    digests = put_pages(repo, *tags)
    repo.commit_checkpoint(
        CheckpointManifest(
            vm_id=vm_id,
            slot_digests=digests,
            page_size=64,
            timestamp=timestamp,
        )
    )
    return digests


class TestManifestFormat:
    def test_roundtrip_preserves_slots_and_metadata(self):
        digests = [digest(b"a"), digest(b"b"), digest(b"a")]
        manifest = CheckpointManifest(
            vm_id="vm/odd name",
            slot_digests=digests,
            page_size=64,
            timestamp=123.5,
        )
        restored = CheckpointManifest.from_json(manifest.to_json())
        assert restored == manifest

    def test_duplicate_slots_stored_once(self):
        manifest = CheckpointManifest(
            vm_id="vm", slot_digests=[digest(b"a")] * 100, page_size=64
        )
        data = json.loads(manifest.to_json())
        assert len(data["digests"]) == 1
        assert len(data["slots"]) == 100

    def test_bad_version_rejected(self):
        data = json.loads(
            CheckpointManifest(vm_id="vm", slot_digests=[digest(b"a")]).to_json()
        )
        data["version"] = 99
        with pytest.raises(ValueError):
            CheckpointManifest.from_json(json.dumps(data))

    def test_out_of_range_slot_rejected(self):
        data = json.loads(
            CheckpointManifest(vm_id="vm", slot_digests=[digest(b"a")]).to_json()
        )
        data["slots"] = [5]
        with pytest.raises(ValueError):
            CheckpointManifest.from_json(json.dumps(data))


class TestSegments:
    def test_put_get_roundtrip(self, tmp_path):
        repo = CheckpointRepository(tmp_path)
        d = digest(b"x")
        assert repo.put_page(d, page(b"x")) is True
        assert repo.put_page(d, page(b"x")) is False  # idempotent
        assert repo.get_page(d) == page(b"x")
        assert repo.has_page(d)
        assert repo.get_page(digest(b"y")) is None

    def test_commit_requires_stored_pages(self, tmp_path):
        repo = CheckpointRepository(tmp_path)
        with pytest.raises(RepositoryError):
            repo.commit_checkpoint(
                CheckpointManifest(vm_id="vm", slot_digests=[digest(b"nope")])
            )


class TestRefcountsAndReclaim:
    def test_replacing_checkpoint_frees_exclusive_segments(self, tmp_path):
        repo = CheckpointRepository(tmp_path, fsync=False)
        commit(repo, "vm", [b"a", b"b"])
        old_exclusive = digest(b"a")
        shared = digest(b"b")
        commit(repo, "vm", [b"b", b"c"])
        assert not repo.has_page(old_exclusive)
        assert repo.has_page(shared)
        assert repo.has_page(digest(b"c"))

    def test_shared_segment_survives_until_last_reference(self, tmp_path):
        repo = CheckpointRepository(tmp_path, fsync=False)
        commit(repo, "vm1", [b"s", b"1"])
        commit(repo, "vm2", [b"s", b"2"])
        shared = digest(b"s")
        assert repo.delete_checkpoint("vm1") > 0
        assert repo.has_page(shared)  # vm2 still references it
        assert not repo.has_page(digest(b"1"))
        assert repo.delete_checkpoint("vm2") > 0
        assert not repo.has_page(shared)

    def test_reclaim_counter_tracks_freed_bytes(self, tmp_path):
        registry = get_registry()
        before = registry.counter("repo.bytes_reclaimed").value
        repo = CheckpointRepository(tmp_path, fsync=False)
        commit(repo, "vm", [b"a", b"b"])
        freed = repo.delete_checkpoint("vm")
        assert freed == 128
        assert registry.counter("repo.bytes_reclaimed").value == before + 128

    def test_gc_sweeps_orphan_segments(self, tmp_path):
        repo = CheckpointRepository(tmp_path, fsync=False)
        commit(repo, "vm", [b"a"])
        put_pages(repo, b"orphan1", b"orphan2")  # never committed
        assert repo.gc() == 128
        assert repo.has_page(digest(b"a"))
        assert not repo.has_page(digest(b"orphan1"))


class TestRecovery:
    def test_reopen_recovers_committed_checkpoints(self, tmp_path):
        repo = CheckpointRepository(tmp_path, fsync=False)
        commit(repo, "vm1", [b"a", b"b"], timestamp=10.0)
        commit(repo, "vm2", [b"b", b"c"], timestamp=20.0)

        reopened = CheckpointRepository(tmp_path, fsync=False)
        report = reopened.recover()
        assert report.recovered == 2
        assert not report.quarantined
        by_vm = {m.vm_id: m for m in report.checkpoints}
        assert by_vm["vm1"].slot_digests == [digest(b"a"), digest(b"b")]
        assert by_vm["vm1"].timestamp == 10.0
        assert reopened.refcount(digest(b"b")) == 2
        # Page bytes identical after the round trip.
        assert reopened.get_page(digest(b"c")) == page(b"c")

    def test_corrupt_segment_quarantined_not_fatal(self, tmp_path):
        registry = get_registry()
        before = registry.counter("repo.quarantined").value
        repo = CheckpointRepository(tmp_path, fsync=False)
        commit(repo, "good", [b"g"])
        commit(repo, "bad", [b"x", b"y"])
        victim = repo._segment_path(digest(b"x"))
        victim.write_bytes(b"\xff" + victim.read_bytes()[1:])

        reopened = CheckpointRepository(tmp_path, fsync=False)
        report = reopened.recover()
        assert [m.vm_id for m in report.checkpoints] == ["good"]
        # Segment + manifest both quarantined, evidence preserved.
        assert len(report.quarantined) == 1
        assert registry.counter("repo.quarantined").value >= before + 2
        assert list(reopened.quarantine_dir.iterdir())
        assert reopened.load_manifest("bad") is None

    def test_unparseable_manifest_quarantined(self, tmp_path):
        repo = CheckpointRepository(tmp_path, fsync=False)
        commit(repo, "good", [b"g"])
        (repo.manifests_dir / "junk.json").write_text("{not json", "utf-8")
        report = CheckpointRepository(tmp_path, fsync=False).recover()
        assert report.recovered == 1
        assert report.quarantined == ["junk.json"]

    def test_recover_removes_stale_temp_files(self, tmp_path):
        repo = CheckpointRepository(tmp_path, fsync=False)
        (repo.manifests_dir / ".tmp-stale.partial").write_bytes(b"half")
        report = repo.recover()
        assert report.temp_files_removed == 1
        assert not list(repo.manifests_dir.glob(".tmp-*"))

    def test_recovered_counter(self, tmp_path):
        registry = get_registry()
        before = registry.counter("repo.recovered_checkpoints").value
        repo = CheckpointRepository(tmp_path, fsync=False)
        commit(repo, "vm1", [b"a"])
        CheckpointRepository(tmp_path, fsync=False).recover()
        assert (
            registry.counter("repo.recovered_checkpoints").value == before + 1
        )


class TestVerify:
    def test_full_scrub_quarantines_corruption(self, tmp_path):
        repo = CheckpointRepository(tmp_path, fsync=False)
        commit(repo, "vm", [b"a", b"b"])
        victim = repo._segment_path(digest(b"b"))
        victim.write_bytes(b"\x00" * 64)
        repo.recover(verify_digests=False)
        report = repo.verify()
        assert not report.ok
        assert report.corrupt_segments == [digest(b"b").hex()]
        assert len(report.quarantined_manifests) == 1

    def test_clean_repository_verifies(self, tmp_path):
        repo = CheckpointRepository(tmp_path, fsync=False)
        commit(repo, "vm", [b"a", b"b"])
        report = repo.verify()
        assert report.ok
        assert report.segments_checked == 2


class TestSessions:
    def test_session_roundtrip(self, tmp_path):
        repo = CheckpointRepository(tmp_path, fsync=False)
        payload = {"vm_id": "vm", "result": {"ok": True}, "rounds": 2}
        repo.save_session("migration/7", payload)
        assert repo.load_sessions() == {"migration/7": payload}
        repo.drop_session("migration/7")
        assert repo.load_sessions() == {}

    def test_corrupt_session_quarantined(self, tmp_path):
        repo = CheckpointRepository(tmp_path, fsync=False)
        repo.save_session("good", {"result": None})
        (repo.sessions_dir / "bad.json").write_text("[broken", "utf-8")
        assert set(repo.load_sessions()) == {"good"}


class TestHostileNames:
    def test_path_hostile_vm_id_stays_inside_repository(self, tmp_path):
        repo = CheckpointRepository(tmp_path, fsync=False)
        vm_id = "../../../etc/passwd"
        commit(repo, vm_id, [b"a"])
        manifests = list(repo.manifests_dir.glob("*.json"))
        assert len(manifests) == 1
        assert manifests[0].parent == repo.manifests_dir
        restored = CheckpointRepository(tmp_path, fsync=False).recover()
        assert [m.vm_id for m in restored.checkpoints] == [vm_id]
