"""Unit tests for disk-image synchronization."""

import numpy as np
import pytest

from repro.net.link import LAN_1GBE, WAN_CLOUDNET
from repro.storage.blocksync import (
    BLOCK_SIZE,
    DiskImage,
    DiskSyncPlan,
    disk_sync_seconds,
    plan_disk_sync,
)
from repro.storage.disk import HDD_HD204UI, SSD_INTEL330


class TestDiskImage:
    def test_construction(self):
        image = DiskImage(100)
        assert image.num_blocks == 100
        assert image.size_bytes == 100 * BLOCK_SIZE
        assert (image.blocks == 0).all()

    def test_writes_allocate_fresh_content(self):
        image = DiskImage(10)
        image.write(np.asarray([0, 1]))
        assert image.blocks[0] != image.blocks[1]
        assert image.blocks[0] != 0

    def test_dirty_tracking(self):
        image = DiskImage(10)
        image.write(np.asarray([3, 7]))
        assert list(image.dirty_blocks()) == [3, 7]
        image.clear_dirty()
        assert image.dirty_blocks().size == 0
        image.write_content(5, 42)
        assert list(image.dirty_blocks()) == [5]

    def test_snapshot_is_copy(self):
        image = DiskImage(4)
        snap = image.snapshot()
        image.write(np.asarray([0]))
        assert snap[0] == 0

    def test_bounds(self):
        image = DiskImage(4)
        with pytest.raises(IndexError):
            image.write(np.asarray([4]))
        with pytest.raises(IndexError):
            image.write_content(-1, 1)
        with pytest.raises(ValueError):
            DiskImage(0)
        with pytest.raises(ValueError):
            DiskImage(4, block_size=0)

    def test_blocks_readonly(self):
        image = DiskImage(4)
        with pytest.raises(ValueError):
            image.blocks[0] = 1


class TestPlanDiskSync:
    def test_cold_copy_sends_everything(self):
        image = DiskImage(16)
        image.write(np.arange(16))
        plan = plan_disk_sync(image.blocks)
        assert plan.blocks_full == 16
        assert plan.fraction_of_full == 1.0
        assert plan.transfer_bytes == 16 * BLOCK_SIZE

    def test_identical_replica_free(self):
        image = DiskImage(16)
        image.write(np.arange(16))
        plan = plan_disk_sync(image.blocks, destination_replica=image.snapshot())
        assert plan.blocks_full == 0
        assert plan.blocks_reused == 16

    def test_dirty_tracking_skips_clean(self):
        image = DiskImage(16)
        image.write(np.arange(16))
        replica = image.snapshot()
        image.clear_dirty()
        image.write(np.asarray([2, 9]))
        plan = plan_disk_sync(
            image.blocks,
            destination_replica=replica,
            dirty_blocks=image.dirty_blocks(),
        )
        assert plan.blocks_skipped == 14
        assert plan.blocks_full == 2

    def test_content_reuse_of_relocated_blocks(self):
        # Block content copied to another block (e.g. file copied):
        # dirty, but the replica already holds the bytes.
        image = DiskImage(8)
        image.write(np.arange(8))
        replica = image.snapshot()
        image.clear_dirty()
        image.write_content(0, int(replica[5]))
        plan = plan_disk_sync(
            image.blocks,
            destination_replica=replica,
            dirty_blocks=image.dirty_blocks(),
        )
        assert plan.blocks_full == 0
        assert plan.blocks_reused == 1

    def test_stale_replica_still_reuses_common_blocks(self):
        image = DiskImage(100)
        image.write(np.arange(100))
        replica = image.snapshot()
        image.clear_dirty()
        image.write(np.arange(30))  # 30 blocks changed since the replica
        plan = plan_disk_sync(image.blocks, destination_replica=replica)
        assert plan.blocks_full == 30
        assert plan.blocks_reused == 70

    def test_replica_size_mismatch(self):
        with pytest.raises(ValueError):
            plan_disk_sync(
                np.zeros(4, dtype=np.uint64),
                destination_replica=np.zeros(5, dtype=np.uint64),
            )

    def test_partition_validated(self):
        with pytest.raises(ValueError):
            DiskSyncPlan(
                blocks_full=2, blocks_reused=2, blocks_skipped=2,
                num_blocks=5, block_size=BLOCK_SIZE,
            )


class TestSyncCost:
    def _plan(self, full, reused=0, skipped=0):
        return DiskSyncPlan(
            blocks_full=full, blocks_reused=reused, blocks_skipped=skipped,
            num_blocks=full + reused + skipped, block_size=BLOCK_SIZE,
        )

    def test_wire_bound_on_wan(self):
        plan = self._plan(full=1000)
        time = disk_sync_seconds(plan, WAN_CLOUDNET, SSD_INTEL330, SSD_INTEL330)
        assert time == pytest.approx(
            WAN_CLOUDNET.transfer_time(plan.transfer_bytes), rel=0.01
        )

    def test_reuse_shrinks_time(self):
        cold = self._plan(full=1000)
        warm = self._plan(full=100, reused=900)
        assert disk_sync_seconds(warm, LAN_1GBE, SSD_INTEL330, SSD_INTEL330) < (
            disk_sync_seconds(cold, LAN_1GBE, SSD_INTEL330, SSD_INTEL330)
        )

    def test_hdd_local_copies_can_dominate(self):
        # Thousands of random 64 KiB local copies on the 75-IOPS HDD
        # can exceed the wire time — the disk analog of the
        # relocated-page effect in test_ablation_disks.
        plan = self._plan(full=10, reused=5000)
        hdd_time = disk_sync_seconds(plan, LAN_1GBE, HDD_HD204UI, HDD_HD204UI)
        ssd_time = disk_sync_seconds(plan, LAN_1GBE, SSD_INTEL330, SSD_INTEL330)
        assert hdd_time > 5 * ssd_time
