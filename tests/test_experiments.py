"""Smoke and shape tests for the experiment drivers.

These run every driver at reduced scale and assert the *shape* of each
paper result — orderings, monotonicity, crossovers — not absolute
numbers.  The full-scale runs live in ``benchmarks/``.
"""

import numpy as np
import pytest

from repro.core.transfer import Method
from repro.experiments import (
    fig1_similarity,
    fig2_week,
    fig4_duplicates,
    fig5_methods,
    fig6_best_case,
    fig7_updates,
    fig8_vdi,
    rates,
    table1,
)
from repro.traces.presets import SERVER_A, SERVER_C


class TestTable1:
    def test_rows_match_catalog(self):
        rows = table1.run()
        names = [row["name"] for row in rows]
        assert "Server A" in names and "Desktop" in names

    def test_format(self):
        text = table1.format_table(table1.run())
        assert "00065BEE5AA7" in text


class TestFig1:
    @pytest.fixture(scope="class")
    def results(self):
        return fig1_similarity.run(
            machines=(SERVER_A,), num_epochs=96, max_pairs_per_bin=20
        )

    def test_similarity_decays(self, results):
        decay = results["Server A"]
        assert decay.at_hours(2)[1] > decay.at_hours(20)[1]

    def test_band_ordering(self, results):
        decay = results["Server A"]
        lo, avg, hi = decay.at_hours(12)
        assert lo <= avg <= hi

    def test_format(self, results):
        assert "Server A" in fig1_similarity.format_table(results)


class TestFig2:
    def test_week_plateau(self):
        decay = fig2_week.run(num_epochs=336, max_pairs_per_bin=12)
        # §6: "Even after one week about 20% of the memory content is
        # unchanged."
        week = decay.at_hours(166)[1]
        assert 0.10 < week < 0.40
        text = fig2_week.format_table(decay)
        assert "Server C" in text


class TestFig4:
    def test_ranges(self):
        results = fig4_duplicates.run(machines=(SERVER_A, SERVER_C), num_epochs=48)
        for series in results.values():
            assert 0.02 < series.mean_duplicate_fraction < 0.45
            assert series.mean_zero_fraction < 0.10
        # Server C has more duplicates but fewer zeros than Server A (§4.2).
        assert (
            results["Server C"].mean_duplicate_fraction
            > results["Server A"].mean_duplicate_fraction
        )
        assert (
            results["Server C"].mean_zero_fraction
            < results["Server A"].mean_zero_fraction
        )
        assert "Server C" in fig4_duplicates.format_table(results)


class TestFig5:
    def test_orderings(self):
        result = fig5_methods.run(machines=(SERVER_A,), num_epochs=96, max_pairs=120)
        bars = result.bar_fractions("Server A")
        assert bars[Method.DEDUP] > bars[Method.DIRTY] > bars[Method.DIRTY_DEDUP]
        assert bars[Method.HASHES_DEDUP] <= bars[Method.HASHES]
        assert bars[Method.HASHES_DEDUP] < bars[Method.DIRTY_DEDUP]
        reduction = result.reduction_cdf("Server A")
        assert np.median(reduction) >= 0.0
        assert "hashes" in fig5_methods.format_table(result)


class TestFig6:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig6_best_case.run(sizes_mib=(256, 512))

    def test_vecycle_beats_qemu_everywhere(self, rows):
        for size in (256, 512):
            for link in ("lan-1gbe", "wan-cloudnet"):
                assert fig6_best_case.reduction_percent(rows, size, link) > 50

    def test_time_grows_with_size(self, rows):
        by_key = {(r.size_mib, r.link, r.strategy): r.time_s for r in rows}
        assert by_key[(512, "lan-1gbe", "qemu")] > by_key[(256, "lan-1gbe", "qemu")]
        assert by_key[(512, "lan-1gbe", "vecycle")] > by_key[(256, "lan-1gbe", "vecycle")]

    def test_wan_benefit_larger_than_lan(self, rows):
        lan = fig6_best_case.reduction_percent(rows, 512, "lan-1gbe")
        wan = fig6_best_case.reduction_percent(rows, 512, "wan-cloudnet")
        assert wan > lan

    def test_traffic_reduction_two_orders(self, rows):
        tx = {(r.strategy): r.tx_gib for r in rows
              if r.size_mib == 512 and r.link == "wan-cloudnet"}
        assert tx["vecycle"] < tx["qemu"] / 20

    def test_format(self, rows):
        assert "VeCycle time reduction" in fig6_best_case.format_table(rows)


class TestFig7:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig7_updates.run(memory_mib=256, updates_percent=(0, 50, 100))

    def test_vecycle_time_grows_with_updates(self, rows):
        vecycle_lan = {
            r.updates_percent: r.time_s
            for r in rows
            if r.strategy == "vecycle" and r.link == "lan-1gbe"
        }
        assert vecycle_lan[0] < vecycle_lan[50] < vecycle_lan[100]

    def test_qemu_baseline_flat(self, rows):
        qemu_lan = {
            r.updates_percent: r.time_s
            for r in rows
            if r.strategy == "qemu" and r.link == "lan-1gbe"
        }
        assert max(qemu_lan.values()) == pytest.approx(min(qemu_lan.values()), rel=0.05)

    def test_vecycle_approaches_baseline_at_100(self, rows):
        cells = {
            (r.strategy, r.updates_percent): r
            for r in rows
            if r.link == "wan-cloudnet"
        }
        full = cells[("qemu", 100)]
        worst = cells[("vecycle", 100)]
        assert worst.tx_gib <= full.tx_gib
        assert worst.tx_gib > 0.8 * full.tx_gib * 0.9  # ramdisk covers 90%

    def test_traffic_proportional_to_updates(self, rows):
        vecycle = {
            r.updates_percent: r.tx_gib
            for r in rows
            if r.strategy == "vecycle" and r.link == "lan-1gbe"
        }
        assert vecycle[50] == pytest.approx(
            (vecycle[0] + vecycle[100]) / 2, rel=0.15
        )

    def test_format(self, rows):
        assert "Updates" in fig7_updates.format_table(rows)


class TestFig8:
    def test_small_replay(self):
        result = fig8_vdi.run(num_epochs=5 * 48)
        assert result.num_migrations == 8  # 4 weekdays in 5 trace days
        assert result.fraction_of_baseline(Method.HASHES_DEDUP) < (
            result.fraction_of_baseline(Method.DEDUP)
        )
        assert "baseline" in fig8_vdi.format_table(result)


class TestRates:
    def test_md5_not_bottleneck_on_gigabit(self):
        rows = {row.algorithm: row for row in rates.run(measure_bytes=1 << 20)}
        assert "lan-1gbe" not in rows["md5"].bottleneck_on
        assert "lan-40gbe" in rows["md5"].bottleneck_on

    def test_announce_size(self):
        from repro.core.checksum import MD5

        assert rates.announce_size_bytes(4 * 2**30, MD5) == 16 * 2**20

    def test_format(self):
        assert "16 MiB" in rates.format_table(rates.run(measure_bytes=1 << 20))
