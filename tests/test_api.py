"""The public API surface: imports, __all__, and the quickstart path."""

import numpy as np


class TestPublicImports:
    def test_top_level_all_resolves(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_all_resolves(self):
        import repro.analysis
        import repro.cluster
        import repro.core
        import repro.mem
        import repro.migration
        import repro.net
        import repro.storage
        import repro.traces
        import repro.vmm

        for module in (
            repro.analysis,
            repro.cluster,
            repro.core,
            repro.mem,
            repro.migration,
            repro.net,
            repro.storage,
            repro.traces,
            repro.vmm,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_version(self):
        import repro

        assert repro.__version__


class TestQuickstart:
    def test_docstring_quickstart_runs(self):
        from repro import (
            Checkpoint,
            LAN_1GBE,
            QEMU,
            SimVM,
            VECYCLE,
            simulate_migration,
        )
        from repro.mem import boot_populate

        vm = SimVM.idle("vm0", memory_bytes=64 * 2**20)
        boot_populate(
            vm.image,
            np.random.default_rng(0),
            used_fraction=0.95,
            duplicate_fraction=0.08,
            zero_fraction=0.03,
        )
        checkpoint = Checkpoint(vm_id="vm0", fingerprint=vm.fingerprint())
        fast = simulate_migration(vm, VECYCLE, LAN_1GBE, checkpoint=checkpoint)
        slow = simulate_migration(vm, QEMU, LAN_1GBE)
        assert fast.total_time_s < slow.total_time_s
        assert fast.tx_bytes < slow.tx_bytes
