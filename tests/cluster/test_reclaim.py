"""Retention on a live daemon must actually reclaim content-store bytes.

The leak this PR fixes: checkpoints dropped by a retention policy (or
replaced, or LRU-evicted) kept their pages in the host-wide
:class:`~repro.mem.pagestore.ContentAddressedStore` forever — the VDI
consolidation host's memory grew monotonically.  These tests replay a
multi-day checkpoint churn and assert net-zero growth: after retention
runs, ``stored_bytes`` equals exactly what the *live* checkpoints
reference.
"""

import numpy as np

from repro.cluster.gc import TtlRetention, reclaim_hosted
from repro.core.fingerprint import Fingerprint
from repro.mem.pagestore import PageStore
from repro.runtime.daemon import CheckpointDaemon
from repro.storage.repository import CheckpointRepository

HOUR = 3600.0
DAY = 24 * HOUR


def fingerprint(values, timestamp):
    return Fingerprint(
        hashes=np.asarray(values, dtype=np.uint64), timestamp=timestamp
    )


def live_bytes(daemon):
    """Bytes the currently hosted checkpoints actually reference."""
    digests = set()
    for hosted in daemon.checkpoints.values():
        digests.update(d for d in hosted.slot_digests if d is not None)
    return sum(len(daemon.store.get(d)) for d in digests)


class TestReclaimHosted:
    def test_rejected_checkpoints_dropped_and_bytes_freed(self):
        daemon = CheckpointDaemon(pagestore=PageStore(page_size=64))
        daemon.install_checkpoint("old", fingerprint([1, 2], timestamp=0.0))
        daemon.install_checkpoint(
            "new", fingerprint([2, 3], timestamp=2 * DAY)
        )
        report = reclaim_hosted(
            daemon, TtlRetention(ttl_s=DAY), now_s=2 * DAY + HOUR
        )
        assert report.evicted == ["old"]
        assert report.bytes_reclaimed == 64  # page 1 was "old"-exclusive
        assert "old" not in daemon.checkpoints
        # Page 2 is still referenced by "new" and survives.
        assert daemon.store.stored_bytes == 2 * 64

    def test_report_str_mentions_bytes_and_count(self):
        daemon = CheckpointDaemon(pagestore=PageStore(page_size=64))
        daemon.install_checkpoint("vm", fingerprint([7], timestamp=0.0))
        report = reclaim_hosted(daemon, TtlRetention(ttl_s=1.0), now_s=DAY)
        assert "64 bytes" in str(report)
        assert "1 checkpoint(s)" in str(report)


class TestNetZeroGrowth:
    def test_vdi_churn_replay_shows_no_leak(self):
        """Five days of per-day checkpoints; retention keeps one day."""
        rng = np.random.default_rng(11)
        daemon = CheckpointDaemon(pagestore=PageStore(page_size=64))
        policy = TtlRetention(ttl_s=DAY)
        for day in range(5):
            for desktop in range(4):
                # Each desktop's image drifts day over day but shares
                # pages with its previous checkpoint and with peers.
                values = rng.integers(1, 40, size=16, dtype=np.uint64)
                daemon.install_checkpoint(
                    f"desktop-{desktop}",
                    fingerprint(values, timestamp=day * DAY),
                )
            reclaim_hosted(daemon, policy, now_s=day * DAY + HOUR)
            # Net-zero growth: the content store holds exactly the bytes
            # the surviving checkpoints reference — nothing leaked from
            # replaced or retention-dropped generations.
            assert daemon.store.stored_bytes == live_bytes(daemon)
        assert set(daemon.checkpoints) == {f"desktop-{i}" for i in range(4)}

    def test_dropping_every_checkpoint_empties_the_store(self):
        daemon = CheckpointDaemon(pagestore=PageStore(page_size=64))
        for index in range(3):
            daemon.install_checkpoint(
                f"vm-{index}",
                fingerprint([index, index + 1, 50], timestamp=0.0),
            )
        reclaim_hosted(daemon, TtlRetention(ttl_s=1.0), now_s=DAY)
        assert daemon.checkpoints == {}
        assert daemon.store.stored_bytes == 0
        assert len(daemon.store) == 0

    def test_repository_backed_reclaim_frees_segments_too(self, tmp_path):
        daemon = CheckpointDaemon(
            pagestore=PageStore(page_size=64), state_dir=tmp_path
        )
        daemon.install_checkpoint("old", fingerprint([1, 2], timestamp=0.0))
        daemon.install_checkpoint(
            "new", fingerprint([2, 3], timestamp=2 * DAY)
        )
        before = daemon.repository.stored_bytes
        report = reclaim_hosted(
            daemon, TtlRetention(ttl_s=DAY), now_s=2 * DAY + HOUR
        )
        assert report.evicted == ["old"]
        # The exclusive segment is gone from disk, not just from memory.
        assert daemon.repository.stored_bytes == before - 64
        reopened = CheckpointRepository(tmp_path)
        assert [m.vm_id for m in reopened.recover().checkpoints] == ["new"]
