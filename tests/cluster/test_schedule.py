"""Unit tests for migration schedules."""

import pytest

from repro.cluster.schedule import (
    ping_pong_schedule,
    vdi_schedule,
    weekday_of_trace_day,
)


class TestWeekdays:
    def test_day_zero_is_tuesday(self):
        # Trace day 0..3 = Tue..Fri, 4..5 = weekend, 6 = Monday.
        assert [weekday_of_trace_day(d) for d in range(7)] == [
            True, True, True, True, False, False, True,
        ]

    def test_negative_day_rejected(self):
        with pytest.raises(ValueError):
            weekday_of_trace_day(-1)


class TestPingPong:
    def test_alternates_hosts(self):
        events = ping_pong_schedule(2.0, 4, host_a="a", host_b="b")
        assert [(e.source, e.destination) for e in events] == [
            ("a", "b"), ("b", "a"), ("a", "b"), ("b", "a"),
        ]

    def test_interval_spacing(self):
        events = ping_pong_schedule(3.0, 3)
        assert [e.time_hours for e in events] == [0.0, 3.0, 6.0]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ping_pong_schedule(0, 2)
        with pytest.raises(ValueError):
            ping_pong_schedule(1, 0)


class TestVdiSchedule:
    def test_paper_count_26_migrations(self):
        events = vdi_schedule(19)
        assert len(events) == 26  # 13 weekdays × 2 (§4.6)

    def test_no_weekend_migrations(self):
        for event in vdi_schedule(19):
            day = int(event.time_hours // 24)
            assert weekday_of_trace_day(day)

    def test_morning_goes_to_workstation(self):
        events = vdi_schedule(5)
        mornings = [e for e in events if e.time_hours % 24 == 9.0]
        assert all(e.destination == "workstation" for e in mornings)
        assert all(e.source == "consolidation-server" for e in mornings)

    def test_evening_goes_to_server(self):
        events = vdi_schedule(5)
        evenings = [e for e in events if e.time_hours % 24 == 17.0]
        assert all(e.destination == "consolidation-server" for e in evenings)

    def test_sorted_by_time(self):
        times = [e.time_hours for e in vdi_schedule(19)]
        assert times == sorted(times)

    def test_short_trace_fewer_weekdays(self):
        events = vdi_schedule(3)  # Tue, Wed, Thu
        assert len(events) == 6

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            vdi_schedule(0)
        with pytest.raises(ValueError):
            vdi_schedule(5, morning_hour=18, evening_hour=9)
