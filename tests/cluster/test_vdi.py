"""Tests for the VDI consolidation replay (Figure 8)."""

import numpy as np
import pytest

from repro.cluster.schedule import MigrationEvent
from repro.cluster.vdi import VDI_METHODS, replay_vdi
from repro.core.fingerprint import Fingerprint
from repro.core.transfer import Method
from repro.traces.generate import Trace


def trace_of(rows, epoch_hours=0.5, ram_bytes=None):
    fingerprints = [
        Fingerprint(
            hashes=np.asarray(row, dtype=np.uint64),
            timestamp=(i + 1) * epoch_hours * 3600,
        )
        for i, row in enumerate(rows)
    ]
    return Trace(
        machine="desk",
        ram_bytes=ram_bytes or 4096 * len(rows[0]),
        fingerprints=fingerprints,
    )


def simple_schedule(times):
    events = []
    location = "server"
    for t in times:
        other = "workstation" if location == "server" else "server"
        events.append(MigrationEvent(time_hours=t, source=location, destination=other))
        location = other
    return events


class TestReplay:
    def test_first_migration_is_full(self):
        trace = trace_of([[1, 2, 3, 4]] * 8)
        result = replay_vdi(trace, schedule=simple_schedule([1.0, 2.0]))
        assert result.records[0].fractions[Method.FULL] == 1.0
        # dedup still helps on the first migration.
        assert result.records[0].fractions[Method.DEDUP] == 1.0  # all unique

    def test_unchanged_memory_second_migration_free(self):
        trace = trace_of([[1, 2, 3, 4]] * 8)
        result = replay_vdi(trace, schedule=simple_schedule([1.0, 2.0]))
        second = result.records[1].fractions
        assert second[Method.HASHES_DEDUP] == 0.0
        assert second[Method.DIRTY_DEDUP] == 0.0

    def test_changed_memory_costs_traffic(self):
        trace = trace_of([[1, 2, 3, 4], [1, 2, 3, 4], [9, 8, 3, 4], [9, 8, 3, 4]])
        result = replay_vdi(trace, schedule=simple_schedule([0.5, 1.5]))
        second = result.records[1].fractions
        assert second[Method.HASHES_DEDUP] == pytest.approx(0.5)

    def test_totals_and_fractions(self):
        trace = trace_of([[1, 2]] * 6, ram_bytes=100)
        result = replay_vdi(trace, schedule=simple_schedule([0.5, 1.0, 1.5]))
        assert result.total_bytes(Method.FULL) == pytest.approx(300.0)
        assert result.fraction_of_baseline(Method.FULL) == 1.0
        # Later migrations free → vecycle total = first migration only.
        vecycle = result.total_bytes(Method.HASHES_DEDUP)
        assert vecycle == pytest.approx(result.records[0].fractions[Method.HASHES_DEDUP] * 100)

    def test_per_migration_percent(self):
        trace = trace_of([[1, 2]] * 4)
        result = replay_vdi(trace, schedule=simple_schedule([0.5, 1.0]))
        series = result.per_migration_percent(Method.FULL)
        assert series == [100.0, 100.0]

    def test_empty_schedule_rejected(self):
        trace = trace_of([[1, 2]] * 4)
        with pytest.raises(ValueError):
            replay_vdi(trace, schedule=[])

    def test_default_schedule_from_trace_duration(self, tiny_trace):
        result = replay_vdi(tiny_trace)
        # One day (Tuesday) → two migrations.
        assert result.num_migrations == 2

    def test_vdi_methods_cover_figure8(self):
        assert Method.FULL in VDI_METHODS
        assert Method.DEDUP in VDI_METHODS
        assert Method.HASHES_DEDUP in VDI_METHODS


class TestCheckpointChaining:
    def test_checkpoint_is_previous_migration_state(self):
        # Memory changes only between migrations 2 and 3; migration 3's
        # traffic must reflect the delta to migration 2's state, not to
        # the original state.
        rows = [[1, 2, 3, 4], [1, 2, 3, 4], [5, 6, 3, 4], [5, 6, 7, 4]]
        trace = trace_of(rows)
        result = replay_vdi(trace, schedule=simple_schedule([0.5, 1.5, 2.0]))
        third = result.records[2].fractions
        # Between fp index 2 (t=1.5h) and 3 (t=2h): one page changed.
        assert third[Method.HASHES_DEDUP] == pytest.approx(0.25)
