"""Unit tests for consolidation policies."""

import pytest

from repro.cluster.policies import (
    FollowTheSun,
    Move,
    ThresholdConsolidation,
    VmStatus,
)


def status(vm_id="vm1", host="host-0", home="host-0", active=False):
    return VmStatus(vm_id=vm_id, host=host, home_host=home, active=active)


class TestThresholdConsolidation:
    def test_idle_vm_consolidated_after_streak(self):
        policy = ThresholdConsolidation(min_idle_epochs=2)
        fleet = [status(active=False)]
        assert policy.decide(fleet, 0) == []  # streak 1: not yet
        moves = policy.decide(fleet, 1)  # streak 2: go
        assert moves == [Move(vm_id="vm1", destination="consolidation-server")]

    def test_active_vm_on_server_sent_home(self):
        policy = ThresholdConsolidation()
        fleet = [status(host="consolidation-server", active=True)]
        assert policy.decide(fleet, 0) == [Move(vm_id="vm1", destination="host-0")]

    def test_active_vm_at_home_stays(self):
        policy = ThresholdConsolidation()
        assert policy.decide([status(active=True)], 0) == []

    def test_activity_resets_streak(self):
        policy = ThresholdConsolidation(min_idle_epochs=2)
        idle = [status(active=False)]
        policy.decide(idle, 0)
        policy.decide([status(active=True)], 1)  # streak reset
        assert policy.decide(idle, 2) == []  # streak 1 again
        assert len(policy.decide(idle, 3)) == 1

    def test_already_consolidated_idle_vm_stays(self):
        policy = ThresholdConsolidation(min_idle_epochs=1)
        fleet = [status(host="consolidation-server", active=False)]
        assert policy.decide(fleet, 0) == []

    def test_independent_vms(self):
        policy = ThresholdConsolidation(min_idle_epochs=1)
        fleet = [
            status(vm_id="a", active=False),
            status(vm_id="b", active=True),
        ]
        moves = policy.decide(fleet, 0)
        assert moves == [Move(vm_id="a", destination="consolidation-server")]

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            ThresholdConsolidation(min_idle_epochs=0)


class TestFollowTheSun:
    def test_site_flips_each_period(self):
        policy = FollowTheSun(period_epochs=4)
        assert policy.active_site(0) == "site-east"
        assert policy.active_site(3) == "site-east"
        assert policy.active_site(4) == "site-west"
        assert policy.active_site(8) == "site-east"

    def test_everyone_moves_to_active_site(self):
        policy = FollowTheSun(period_epochs=1)
        fleet = [
            status(vm_id="a", host="site-east"),
            status(vm_id="b", host="site-west"),
        ]
        moves = policy.decide(fleet, 1)  # active site is west
        assert moves == [Move(vm_id="a", destination="site-west")]

    def test_no_moves_when_everyone_in_place(self):
        policy = FollowTheSun(period_epochs=1)
        fleet = [status(host="site-west")]
        assert policy.decide(fleet, 1) == []

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            FollowTheSun(period_epochs=0)
        with pytest.raises(ValueError):
            FollowTheSun(sites=("x", "x"))
