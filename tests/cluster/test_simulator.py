"""Tests for the datacenter consolidation simulator."""

import pytest

from repro.cluster.policies import FollowTheSun, ThresholdConsolidation
from repro.cluster.simulator import (
    DatacenterSimulator,
    FleetVm,
    build_fleet,
)
from repro.core.strategies import QEMU, VECYCLE
from repro.migration.vm import SimVM
from repro.net.link import LAN_1GBE

MIB = 2**20


def small_sim(strategy, seed=3, num_vms=3, epochs_policy=None):
    fleet, hosts = build_fleet(num_vms, 16 * MIB, seed=seed)
    policy = epochs_policy or ThresholdConsolidation()
    return DatacenterSimulator(fleet, hosts, policy, strategy, LAN_1GBE, seed=seed)


class TestBuildFleet:
    def test_fleet_shape(self):
        fleet, hosts = build_fleet(5, 16 * MIB, num_home_hosts=2)
        assert len(fleet) == 5
        assert {h.name for h in hosts} == {"host-0", "host-1", "consolidation-server"}
        assert {m.home_host for m in fleet} == {"host-0", "host-1"}

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            build_fleet(0, 16 * MIB)
        with pytest.raises(ValueError):
            build_fleet(2, 16 * MIB, num_home_hosts=0)


class TestSimulation:
    def test_consolidation_produces_migrations(self):
        report = small_sim(VECYCLE).run(48)
        assert report.num_migrations > 0
        assert report.total_tx_bytes > 0
        assert report.epochs == 48

    def test_deterministic(self):
        a = small_sim(VECYCLE).run(24)
        b = small_sim(VECYCLE).run(24)
        assert a.num_migrations == b.num_migrations
        assert a.total_tx_bytes == b.total_tx_bytes

    def test_vecycle_beats_qemu_on_aggregate_traffic(self):
        vecycle = small_sim(VECYCLE).run(48)
        qemu = small_sim(QEMU).run(48)
        # Same activity seeds → same migration schedule; VeCycle moves
        # far fewer bytes.
        assert vecycle.num_migrations == qemu.num_migrations
        assert vecycle.total_tx_bytes < 0.7 * qemu.total_tx_bytes
        assert vecycle.traffic_fraction_of_full < 0.7
        assert qemu.traffic_fraction_of_full > 0.95

    def test_follow_the_sun(self):
        fleet, _ = build_fleet(2, 16 * MIB, num_home_hosts=1, seed=9)
        from repro.cluster.host import Host

        hosts = [Host(name="site-east"), Host(name="site-west")]
        for member in fleet:
            member.home_host = "site-east"
            member.host = "site-east"
        sim = DatacenterSimulator(
            fleet, hosts, FollowTheSun(period_epochs=6), VECYCLE, LAN_1GBE, seed=9
        )
        report = sim.run(24)
        # 24 epochs / 6-epoch period → 3 flips after the first period,
        # 2 VMs each.
        assert report.num_migrations == 6
        # Returning to a visited site recycles its checkpoint.
        later = report.migrations[2:]
        assert all(m.pages_checksum_only > 0 for m in later)

    def test_summary_string(self):
        report = small_sim(VECYCLE).run(12)
        assert "vecycle" in report.summary()

    def test_unknown_home_host_rejected(self):
        fleet, hosts = build_fleet(1, 16 * MIB)
        fleet[0].home_host = "mystery"
        fleet[0].host = "mystery"
        with pytest.raises(ValueError):
            DatacenterSimulator(
                fleet, hosts, ThresholdConsolidation(), VECYCLE, LAN_1GBE
            )

    def test_invalid_epochs(self):
        with pytest.raises(ValueError):
            small_sim(VECYCLE).run(0)

    def test_fleet_vm_validation(self):
        vm = SimVM("x", 16 * MIB)
        with pytest.raises(ValueError):
            FleetVm(vm=vm, home_host="h", activation_probability=1.5)
