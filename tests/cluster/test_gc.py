"""Unit tests for checkpoint retention policies."""

import numpy as np
import pytest

from repro.cluster.gc import TtlRetention, ValueRetention, collect_garbage
from repro.core.checkpoint import Checkpoint, CheckpointStore
from repro.core.fingerprint import Fingerprint
from repro.core.prediction import SimilarityPredictor

HOUR = 3600.0


def checkpoint(vm_id, timestamp=0.0):
    return Checkpoint(
        vm_id=vm_id,
        fingerprint=Fingerprint(
            hashes=np.arange(4, dtype=np.uint64), timestamp=timestamp
        ),
    )


class TestTtlRetention:
    def test_young_kept_old_dropped(self):
        policy = TtlRetention(ttl_s=24 * HOUR)
        assert policy.keep(checkpoint("a", timestamp=0.0), now_s=23 * HOUR)
        assert not policy.keep(checkpoint("a", timestamp=0.0), now_s=25 * HOUR)

    def test_boundary_inclusive(self):
        policy = TtlRetention(ttl_s=HOUR)
        assert policy.keep(checkpoint("a", 0.0), now_s=HOUR)

    def test_invalid_ttl(self):
        with pytest.raises(ValueError):
            TtlRetention(ttl_s=0)


class TestValueRetention:
    def _fast_decay_predictor(self):
        predictor = SimilarityPredictor()
        for age_h, similarity in ((0.5, 0.5), (1, 0.3), (2, 0.1), (4, 0.03), (8, 0.02)):
            predictor.observe(age_h * HOUR, similarity)
        return predictor

    def test_default_predictor_keeps_fresh(self):
        policy = ValueRetention(min_similarity=0.15)
        assert policy.keep(checkpoint("a", 0.0), now_s=HOUR)

    def test_fast_decay_vm_dropped_early(self):
        policy = ValueRetention(
            min_similarity=0.15,
            predictors={"crawler": self._fast_decay_predictor()},
        )
        assert policy.keep(checkpoint("crawler", 0.0), now_s=0.5 * HOUR)
        assert not policy.keep(checkpoint("crawler", 0.0), now_s=6 * HOUR)
        # The default (slow) predictor still keeps other VMs at 6 h.
        assert policy.keep(checkpoint("server", 0.0), now_s=6 * HOUR)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            ValueRetention(min_similarity=1.5)


class TestCollectGarbage:
    def test_evicts_only_rejected(self):
        store = CheckpointStore()
        store.store(checkpoint("old", timestamp=0.0))
        store.store(checkpoint("new", timestamp=100 * HOUR))
        evicted = collect_garbage(store, TtlRetention(ttl_s=24 * HOUR), now_s=101 * HOUR)
        assert evicted == ["old"]
        assert "new" in store and "old" not in store

    def test_idempotent(self):
        store = CheckpointStore()
        store.store(checkpoint("a", 0.0))
        policy = TtlRetention(ttl_s=1.0)
        collect_garbage(store, policy, now_s=10.0)
        assert collect_garbage(store, policy, now_s=10.0) == []
