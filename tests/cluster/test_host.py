"""Unit tests for the Host abstraction."""

import numpy as np

from repro.cluster.host import Host
from repro.core.checkpoint import Checkpoint, CheckpointStore
from repro.core.fingerprint import Fingerprint
from repro.storage.disk import SSD_INTEL330


def checkpoint(vm_id="vm", pages=4):
    return Checkpoint(
        vm_id=vm_id,
        fingerprint=Fingerprint(hashes=np.arange(pages, dtype=np.uint64)),
    )


class TestHost:
    def test_default_disk_is_hdd(self):
        # The paper's default checkpoint store is the spinning disk.
        assert Host(name="h").disk.name == "hdd-hd204ui"

    def test_custom_disk(self):
        assert Host(name="h", disk=SSD_INTEL330).disk is SSD_INTEL330

    def test_checkpoint_roundtrip(self):
        host = Host(name="h")
        cp = checkpoint()
        host.save_checkpoint(cp)
        assert host.checkpoint_for("vm") is cp
        assert host.checkpoint_for("other") is None

    def test_independent_stores(self):
        a, b = Host(name="a"), Host(name="b")
        a.save_checkpoint(checkpoint())
        assert b.checkpoint_for("vm") is None

    def test_bounded_store(self):
        host = Host(name="h", store=CheckpointStore(capacity_bytes=8 * 4096))
        host.save_checkpoint(checkpoint("vm1"))
        host.save_checkpoint(checkpoint("vm2"))
        host.save_checkpoint(checkpoint("vm3"))
        assert len(host.store) == 2  # capacity is two 4-page checkpoints

    def test_peer_hash_bookkeeping_per_vm(self):
        host = Host(name="h")
        host.learn_peer_hashes("vm1", "peer")
        assert host.knows_peer_hashes("vm1", "peer")
        assert not host.knows_peer_hashes("vm2", "peer")
