"""Cross-module integration tests.

The strongest check in the suite: the *cost-model simulator* and the
*byte-faithful mini-hypervisor* must agree page-for-page on what a
VeCycle migration transfers, because they implement the same protocol at
different levels of abstraction.
"""

import numpy as np
import pytest

from repro.cluster.host import Host
from repro.core.checkpoint import Checkpoint
from repro.core.strategies import VECYCLE
from repro.core.transfer import Method, compute_transfer_set
from repro.mem.image import MemoryImage
from repro.mem.mutation import boot_populate
from repro.mem.pagestore import PageStore
from repro.migration.engine import ping_pong
from repro.migration.vm import SimVM
from repro.net.link import LAN_1GBE, WAN_CLOUDNET
from repro.vmm.guest import GuestRAM
from repro.vmm.migrate import run_migration, write_checkpoint

MIB = 2**20


class TestSimulatorMatchesByteProtocol:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_transfer_counts_agree(self, tmp_path, seed):
        rng = np.random.default_rng(seed)
        # Build the checkpoint-time image...
        image = MemoryImage(64)
        boot_populate(
            image, rng, used_fraction=0.9, duplicate_fraction=0.1, zero_fraction=0.05
        )
        checkpoint_fp = image.fingerprint()
        # ...then evolve it: fresh writes, relocation, duplication.
        image.write_fresh(image.sample_slots(12, rng))
        image.relocate(image.sample_slots(10, rng), rng)

        # Abstract: the simulator's transfer set.
        transfer = compute_transfer_set(
            Method.HASHES, image.fingerprint(), checkpoint=checkpoint_fp
        )

        # Concrete: real bytes through the real protocol.
        store = PageStore()
        checkpoint_ram = GuestRAM(64)
        for page, content in enumerate(checkpoint_fp.hashes):
            checkpoint_ram.write_page(page, store.page_bytes(int(content)))
        path = tmp_path / "ckpt"
        write_checkpoint(checkpoint_ram, path)
        current_ram = GuestRAM.from_image(image, store)
        result = run_migration(current_ram, checkpoint_path=path)

        assert result.identical
        assert result.send.pages_full == transfer.full_pages
        assert result.send.pages_checksum_only == transfer.checksum_only_pages


class TestTraceDrivenMigration:
    def test_trace_similarity_predicts_migration_traffic(self, tiny_trace):
        # Pick two fingerprints 2 hours apart; the simulator's traffic
        # for (current=later, checkpoint=earlier) must track the
        # page-level overlap.
        earlier, later = tiny_trace.fingerprints[0], tiny_trace.fingerprints[4]
        transfer = compute_transfer_set(Method.HASHES, later, checkpoint=earlier)
        in_checkpoint_fraction = transfer.checksum_only_pages / later.num_pages
        similarity = later.similarity_to(earlier)
        # Both measure content overlap; slot-weighted vs unique-weighted
        # differ, but they must agree directionally.
        assert in_checkpoint_fraction == pytest.approx(similarity, abs=0.25)
        assert transfer.full_pages + transfer.checksum_only_pages == later.num_pages


class TestPingPongScenario:
    def test_week_of_ping_pong_total_traffic(self):
        # A consolidation scenario: the VM oscillates between hosts with
        # light activity in between.  Total VeCycle traffic over 6
        # migrations stays far below 6 full copies.
        vm = SimVM("vm", 32 * MIB, dirty_rate_pages_per_s=20,
                   working_set_fraction=0.2, seed=13)
        vm.image.write_fresh(np.arange(vm.num_pages))
        a, b = Host(name="a"), Host(name="b")

        def busy_interval(vm, index):
            vm.run_for(600)

        reports = ping_pong(
            vm, a, b, VECYCLE, LAN_1GBE, round_trips=3,
            between_migrations=busy_interval,
        )
        total = sum(r.tx_bytes for r in reports)
        full_equivalent = 6 * vm.memory_bytes
        assert total < 0.5 * full_equivalent
        # First migration is the expensive one (paper Figure 8's spike).
        assert reports[0].tx_bytes == max(r.tx_bytes for r in reports)

    def test_wan_and_lan_same_traffic_different_time(self):
        vm_lan = SimVM.idle("vm", 32 * MIB, seed=3)
        vm_lan.image.write_fresh(np.arange(vm_lan.num_pages))
        vm_wan = SimVM.idle("vm", 32 * MIB, seed=3)
        vm_wan.image.write_fresh(np.arange(vm_wan.num_pages))

        ckpt = Checkpoint(vm_id="vm", fingerprint=vm_lan.fingerprint())
        from repro.migration.precopy import simulate_migration

        lan = simulate_migration(vm_lan, VECYCLE, LAN_1GBE, checkpoint=ckpt)
        wan = simulate_migration(vm_wan, VECYCLE, WAN_CLOUDNET, checkpoint=ckpt)
        assert lan.tx_bytes == wan.tx_bytes
        assert wan.total_time_s >= lan.total_time_s
