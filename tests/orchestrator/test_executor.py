"""Executor semantics: admission control, retry, structured failure."""

import asyncio
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.strategies import QEMU
from repro.mem.pagestore import PageStore
from repro.orchestrator.executor import AdmissionLimits, MigrationExecutor
from repro.runtime import (
    MigrationError,
    MigrationSource,
    RetryPolicy,
    RuntimeConfig,
    SourceState,
)
from repro.runtime.metrics import MigrationMetrics


class FakeSource:
    """Quacks like a MigrationSource; records concurrency and failures."""

    def __init__(self, vm_id, tracker, failures=(), delay_s=0.02):
        self.state = SimpleNamespace(vm_id=vm_id)
        self.tracker = tracker
        self.failures = list(failures)
        self.delay_s = delay_s
        self.calls = 0

    async def migrate(self, host, port, dirty_feed=None):
        self.calls += 1
        self.tracker["running"] += 1
        self.tracker["peak"] = max(self.tracker["peak"], self.tracker["running"])
        try:
            await asyncio.sleep(self.delay_s)
            if self.failures:
                raise MigrationError(self.failures.pop(0), "injected")
            return MigrationMetrics(vm_id=self.state.vm_id, mode="fake", link="x")
        finally:
            self.tracker["running"] -= 1


def run(coro):
    return asyncio.run(coro)


class TestAdmissionControl:
    def test_cluster_cap_bounds_concurrency(self):
        limits = AdmissionLimits(cluster_max=2, per_host_max=2)
        executor = MigrationExecutor(limits)
        tracker = {"running": 0, "peak": 0}

        async def main():
            outcomes = await asyncio.gather(
                *(
                    executor.run(
                        FakeSource(f"vm-{i}", tracker), f"host-{i}", "h", 0
                    )
                    for i in range(6)
                )
            )
            return outcomes

        outcomes = run(main())
        assert all(o.ok for o in outcomes)
        assert tracker["peak"] <= 2

    def test_per_host_cap_bounds_one_destination(self):
        limits = AdmissionLimits(cluster_max=8, per_host_max=1)
        executor = MigrationExecutor(limits)
        tracker = {"running": 0, "peak": 0}

        async def main():
            return await asyncio.gather(
                *(
                    executor.run(
                        FakeSource(f"vm-{i}", tracker), "same-host", "h", 0
                    )
                    for i in range(4)
                )
            )

        outcomes = run(main())
        assert all(o.ok for o in outcomes)
        assert tracker["peak"] == 1

    def test_rejects_bad_limits(self):
        with pytest.raises(ValueError):
            AdmissionLimits(cluster_max=0)
        with pytest.raises(ValueError):
            AdmissionLimits(per_host_max=0)
        with pytest.raises(ValueError):
            AdmissionLimits(max_attempts=0)


class TestRetry:
    def test_transport_failure_retried_and_resumed(self):
        executor = MigrationExecutor(
            AdmissionLimits(max_attempts=3, retry_backoff_s=0.001)
        )
        tracker = {"running": 0, "peak": 0}
        source = FakeSource("vm", tracker, failures=["transport"])
        outcome = run(executor.run(source, "host", "h", 0))
        assert outcome.ok
        assert outcome.attempts == 2
        assert source.calls == 2

    def test_retries_are_bounded(self):
        executor = MigrationExecutor(
            AdmissionLimits(max_attempts=2, retry_backoff_s=0.001)
        )
        tracker = {"running": 0, "peak": 0}
        source = FakeSource("vm", tracker, failures=["transport"] * 5)
        outcome = run(executor.run(source, "host", "h", 0))
        assert not outcome.ok
        assert outcome.attempts == 2
        assert outcome.error_code == "transport"

    def test_protocol_failures_never_retried(self):
        executor = MigrationExecutor(
            AdmissionLimits(max_attempts=3, retry_backoff_s=0.001)
        )
        tracker = {"running": 0, "peak": 0}
        source = FakeSource("vm", tracker, failures=["verification"])
        outcome = run(executor.run(source, "host", "h", 0))
        assert not outcome.ok
        assert outcome.attempts == 1
        assert outcome.error_code == "verification"
        assert source.calls == 1


class TestStructuredFailure:
    def test_connection_refused_reports_not_raises(self):
        async def main():
            # Bind-then-close: a port with nothing listening.
            server = await asyncio.start_server(lambda r, w: None, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            server.close()
            await server.wait_closed()
            rng = np.random.default_rng(2)
            source = MigrationSource(
                SourceState(
                    "vm",
                    rng.integers(1, 2**62, size=64, dtype=np.uint64),
                    PageStore(),
                ),
                QEMU,
                config=RuntimeConfig(
                    retry=RetryPolicy(max_attempts=2, base_backoff_s=0.01)
                ),
            )
            executor = MigrationExecutor(
                AdmissionLimits(max_attempts=2, retry_backoff_s=0.001)
            )
            return await executor.run(source, "dead-host", host, port)

        outcome = run(main())
        assert not outcome.ok
        assert outcome.error_code == "transport"
        assert outcome.attempts == 2
        assert outcome.metrics is not None
        assert outcome.metrics.outcome == "failed"
