"""Inventory data model: sketches, JSON round trips, the cluster view."""

import pytest

from repro.orchestrator.inventory import (
    CheckpointSummary,
    ClusterView,
    HostInventory,
    digest_sketch,
    sketch_similarity,
)


def digests_of(ids):
    return [bytes([i]) * 16 for i in ids]


class TestDigestSketch:
    def test_sketch_is_sorted_distinct_and_capped(self):
        digests = digests_of([9, 3, 3, 7, 1, 5])
        sketch = digest_sketch(digests, k=3)
        assert sketch == sorted({d.hex() for d in digests})[:3]
        assert len(sketch) == 3

    def test_small_set_is_complete(self):
        assert len(digest_sketch(digests_of([1, 2]), k=64)) == 2

    def test_rejects_nonpositive_k(self):
        with pytest.raises(ValueError):
            digest_sketch(digests_of([1]), k=0)

    def test_deterministic_regardless_of_order(self):
        a = digest_sketch(digests_of([5, 1, 9, 7]), k=2)
        b = digest_sketch(digests_of([9, 7, 5, 1]), k=2)
        assert a == b


class TestSketchSimilarity:
    def test_identical_sets_score_one(self):
        sketch = digest_sketch(digests_of(range(10)), k=8)
        assert sketch_similarity(sketch, sketch) == 1.0

    def test_disjoint_sets_score_zero(self):
        a = digest_sketch(digests_of(range(0, 10)), k=8)
        b = digest_sketch(digests_of(range(100, 110)), k=8)
        assert sketch_similarity(a, b) == 0.0

    def test_empty_sketch_scores_zero(self):
        assert sketch_similarity((), ("ab",)) == 0.0

    def test_higher_overlap_scores_higher(self):
        current = digest_sketch(digests_of(range(0, 32)), k=16)
        close = digest_sketch(digests_of(range(0, 28)), k=16)
        far = digest_sketch(digests_of(range(24, 56)), k=16)
        assert sketch_similarity(current, close) > sketch_similarity(current, far)

    def test_bottom_k_estimate_counts_shared_union_minima(self):
        # The estimator samples the k smallest of the union, with
        # k = max(|a|, |b|): here that is ids 1–4, of which 3 and 4
        # appear in both sketches.
        a = digest_sketch(digests_of([1, 2, 3, 4]), k=64)
        b = digest_sketch(digests_of([3, 4, 5, 6]), k=64)
        assert sketch_similarity(a, b) == pytest.approx(2 / 4)

    def test_estimate_is_exact_when_union_fits_the_sample(self):
        a = digest_sketch(digests_of([1, 2, 3]), k=64)
        b = digest_sketch(digests_of([1, 2, 3, 4]), k=64)
        assert sketch_similarity(a, b) == pytest.approx(3 / 4)


class TestJsonRoundTrip:
    def test_checkpoint_summary_round_trips(self):
        summary = CheckpointSummary(
            vm_id="vm-a",
            pages=2048,
            unique_pages=1900,
            stored_bytes=1900 * 4096,
            timestamp=12.5,
            last_used=99.0,
            resident=False,
            sketch=("aa", "bb"),
        )
        assert CheckpointSummary.from_json(summary.to_json()) == summary

    def test_host_inventory_from_report(self):
        body = {
            "host": "host-a",
            "port": 1234,
            "active_sessions": 1,
            "max_concurrent_migrations": 3,
            "seq": 7,
            "checkpoints": [
                {
                    "vm_id": "vm-a",
                    "pages": 10,
                    "unique_pages": 9,
                    "stored_bytes": 9 * 4096,
                    "sketch": ["aa"],
                }
            ],
        }
        inventory = HostInventory.from_report(body)
        assert inventory.host == "host-a"
        assert inventory.seq == 7
        assert inventory.max_concurrent_migrations == 3
        assert inventory.checkpoint_for("vm-a").pages == 10
        assert inventory.checkpoint_for("nope") is None
        assert inventory.stored_bytes == 9 * 4096


class TestClusterView:
    def build_view(self):
        def inv(host, vms):
            return HostInventory(
                host=host,
                port=0,
                active_sessions=0,
                max_concurrent_migrations=2,
                checkpoints={
                    vm: CheckpointSummary(
                        vm_id=vm,
                        pages=1,
                        unique_pages=1,
                        stored_bytes=4096,
                        timestamp=0.0,
                        last_used=0.0,
                        resident=True,
                        sketch=(),
                    )
                    for vm in vms
                },
            )

        return ClusterView(
            inventories={
                "b": inv("b", ["vm-1"]),
                "a": inv("a", ["vm-1", "vm-2"]),
            }
        )

    def test_hosts_sorted(self):
        assert self.build_view().hosts() == ["a", "b"]

    def test_checkpoints_for_finds_every_holder(self):
        view = self.build_view()
        assert sorted(view.checkpoints_for("vm-1")) == ["a", "b"]
        assert list(view.checkpoints_for("vm-2")) == ["a"]
        assert view.checkpoints_for("vm-3") == {}
        assert view.total_checkpoints == 3
