"""Placement policy semantics: deterministic unit tests (ISSUE S3)."""

import pytest

from repro.orchestrator.inventory import (
    CheckpointSummary,
    ClusterView,
    HostInventory,
    digest_sketch,
)
from repro.orchestrator.placement import (
    BestCheckpoint,
    CycleAware,
    DestinationSwap,
    PlacementError,
    PlacementRequest,
    available_policies,
    get_policy,
)


def sketch_of(ids):
    return tuple(digest_sketch([bytes([i % 256, i // 256]) * 8 for i in ids]))


def summary(vm_id, ids):
    return CheckpointSummary(
        vm_id=vm_id,
        pages=len(ids),
        unique_pages=len(set(ids)),
        stored_bytes=len(set(ids)) * 4096,
        timestamp=0.0,
        last_used=0.0,
        resident=True,
        sketch=sketch_of(ids),
    )


def view_of(hosts):
    """hosts: name → (active_sessions, {vm_id: page-id list})."""
    inventories = {}
    for name, (busy, checkpoints) in hosts.items():
        inventories[name] = HostInventory(
            host=name,
            port=0,
            active_sessions=busy,
            max_concurrent_migrations=2,
            checkpoints={
                vm: summary(vm, ids) for vm, ids in checkpoints.items()
            },
        )
    return ClusterView(inventories=inventories)


CURRENT = list(range(0, 64))


def request(source="src", active=False, deferrals=0):
    return PlacementRequest(
        vm_id="vm",
        source_host=source,
        num_pages=64,
        sketch=sketch_of(CURRENT),
        active=active,
        deferrals=deferrals,
    )


class TestBestCheckpoint:
    def test_prefers_host_with_higher_similarity_sketch(self):
        view = view_of(
            {
                "src": (0, {}),
                "close": (0, {"vm": list(range(0, 56))}),
                "far": (0, {"vm": list(range(48, 112))}),
            }
        )
        decision = BestCheckpoint().decide(request(), view)
        assert decision.destination == "close"
        assert decision.scores["close"] > decision.scores["far"] > 0.0

    def test_source_host_never_chosen(self):
        view = view_of({"src": (0, {"vm": CURRENT}), "other": (0, {})})
        decision = BestCheckpoint().decide(request(), view)
        assert decision.destination == "other"

    def test_cross_vm_checkpoints_count_at_a_discount(self):
        view = view_of(
            {
                "src": (0, {}),
                "own": (0, {"vm": list(range(0, 32))}),
                "neighbor": (0, {"other-vm": CURRENT}),
            }
        )
        weight = 0.25
        decision = BestCheckpoint(cross_vm_weight=weight).decide(request(), view)
        # The neighbor's perfect cross-VM match is discounted below the
        # VM's own imperfect history.
        assert decision.destination == "own"
        assert decision.scores["neighbor"] == pytest.approx(weight)
        ignoring = BestCheckpoint(cross_vm_weight=0.0).decide(request(), view)
        assert ignoring.scores["neighbor"] == 0.0

    def test_no_checkpoint_falls_back_to_least_loaded_then_name(self):
        view = view_of({"src": (0, {}), "busy": (2, {}), "calm": (0, {})})
        decision = BestCheckpoint().decide(request(), view)
        assert decision.destination == "calm"
        assert decision.score == 0.0
        tie = view_of({"src": (0, {}), "bb": (0, {}), "aa": (0, {})})
        assert BestCheckpoint().decide(request(), tie).destination == "aa"

    def test_empty_cluster_raises_placement_error(self):
        with pytest.raises(PlacementError):
            BestCheckpoint().decide(request(), view_of({"src": (0, {})}))

    def test_rejects_bad_weight(self):
        with pytest.raises(ValueError):
            BestCheckpoint(cross_vm_weight=1.5)


class TestDestinationSwap:
    def test_converges_on_two_host_ping_pong(self):
        policy = DestinationSwap()
        view = view_of({"a": (0, {}), "b": (0, {})})
        location = "a"
        visits = []
        for _ in range(6):
            decision = policy.decide(
                PlacementRequest(vm_id="vm", source_host=location), view
            )
            policy.record_migration("vm", location, decision.destination)
            location = decision.destination
            visits.append(location)
        # First move is the fallback; every later move swaps back.
        assert visits == ["b", "a", "b", "a", "b", "a"]
        assert policy.decide(
            PlacementRequest(vm_id="vm", source_host="a"), view
        ).score == 1.0

    def test_unknown_vm_uses_fallback(self):
        policy = DestinationSwap()
        view = view_of({"a": (0, {}), "b": (1, {}), "c": (0, {})})
        decision = policy.decide(
            PlacementRequest(vm_id="new-vm", source_host="a"), view
        )
        assert decision.destination == "c"  # least loaded, then name
        assert decision.score == 0.0

    def test_dead_swap_partner_degrades_to_fallback(self):
        policy = DestinationSwap()
        policy.record_migration("vm", "gone", "a")
        view = view_of({"a": (0, {}), "b": (0, {})})
        decision = policy.decide(
            PlacementRequest(vm_id="vm", source_host="a"), view
        )
        assert decision.destination == "b"


class TestCycleAware:
    def test_defers_while_vm_is_active(self):
        policy = CycleAware(deactivation_probability=0.25, max_deferrals=3)
        view = view_of({"src": (0, {}), "other": (0, {})})
        decision = policy.decide(request(active=True), view)
        assert decision.deferred
        assert decision.destination == ""
        assert decision.expected_wait_epochs == pytest.approx(4.0)

    def test_idle_vm_delegates_to_inner_policy(self):
        view = view_of(
            {"src": (0, {}), "good": (0, {"vm": CURRENT}), "bad": (0, {})}
        )
        decision = CycleAware().decide(request(active=False), view)
        assert not decision.deferred
        assert decision.destination == "good"
        assert decision.policy == "cycle-aware"

    def test_deferral_budget_bounds_staleness(self):
        policy = CycleAware(max_deferrals=2)
        view = view_of({"src": (0, {}), "other": (0, {})})
        assert policy.decide(request(active=True, deferrals=1), view).deferred
        forced = policy.decide(request(active=True, deferrals=2), view)
        assert not forced.deferred
        assert forced.destination == "other"
        assert "deferral budget exhausted" in forced.reason

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            CycleAware(deactivation_probability=0.0)


class TestRegistry:
    def test_get_policy_round_trip(self):
        for name in available_policies():
            assert get_policy(name).name == name

    def test_unknown_policy(self):
        with pytest.raises(KeyError):
            get_policy("random")
