"""End-to-end control plane tests over real localhost daemons."""

import asyncio

import numpy as np
import pytest

from repro.cluster.schedule import ping_pong_schedule, vdi_schedule
from repro.core.fingerprint import Fingerprint
from repro.core.strategies import QEMU
from repro.mem.pagestore import PageStore
from repro.obs.metrics import get_registry
from repro.orchestrator import (
    AdmissionLimits,
    BestCheckpoint,
    ClusterRegistry,
    MigrationExecutor,
    Orchestrator,
    replay_vdi_live,
)
from repro.runtime import (
    CheckpointDaemon,
    MigrationSource,
    RetryPolicy,
    RuntimeConfig,
    SourceState,
)

N = 512
FAST = RuntimeConfig(
    io_timeout_s=5.0,
    connect_timeout_s=5.0,
    retry=RetryPolicy(max_attempts=3, base_backoff_s=0.01, max_backoff_s=0.05),
    time_scale=0.0,
)
# Inner transport retries disabled: any disconnect must surface to the
# executor, exercising the *orchestrator's* retry path.
NO_INNER_RETRY = RuntimeConfig(
    io_timeout_s=5.0,
    connect_timeout_s=5.0,
    retry=RetryPolicy(max_attempts=1, base_backoff_s=0.01),
    time_scale=0.0,
)


def build_hashes(seed=7):
    rng = np.random.default_rng(seed)
    return rng.integers(1, 2**62, size=N, dtype=np.uint64)


class TestRegistryHeartbeat:
    def test_heartbeat_reports_capacity_and_checkpoints(self):
        async def main():
            pagestore = PageStore()
            async with CheckpointDaemon(
                name="a", pagestore=pagestore, max_concurrent_migrations=3
            ) as daemon:
                daemon.install_checkpoint("vm", Fingerprint(hashes=build_hashes()))
                registry = ClusterRegistry(sketch_k=16)
                registry.register("a", daemon.host, daemon.port)
                record = await registry.poll("a")
                assert record.alive
                inventory = record.inventory
                assert inventory.max_concurrent_migrations == 3
                assert inventory.active_sessions == 0
                summary = inventory.checkpoint_for("vm")
                assert summary.pages == N
                assert summary.resident
                assert 0 < len(summary.sketch) <= 16
                assert registry.view().hosts() == ["a"]

        asyncio.run(main())

    def test_dead_host_is_marked_and_revived(self):
        async def main():
            daemon = CheckpointDaemon(name="a")
            await daemon.start()
            registry = ClusterRegistry(heartbeat_timeout_s=1.0)
            registry.register("a", daemon.host, daemon.port)
            assert (await registry.poll("a")).alive
            port = daemon.port
            await daemon.stop()
            record = await registry.poll("a")
            assert not record.alive
            assert record.consecutive_failures == 1
            assert registry.view().hosts() == []
            # The daemon comes back on the same port: next poll revives.
            reborn = CheckpointDaemon(name="a")
            await reborn.start(port=port)
            try:
                assert (await registry.poll("a")).alive
            finally:
                await reborn.stop()

        asyncio.run(main())

    def test_inventory_survives_daemon_restart(self, tmp_path):
        hashes = build_hashes()

        async def main():
            registry = ClusterRegistry()
            first = CheckpointDaemon(name="a", state_dir=tmp_path)
            await first.start()
            first.install_checkpoint("vm", Fingerprint(hashes=hashes))
            registry.register("a", first.host, first.port)
            before = (await registry.poll("a")).inventory.checkpoint_for("vm")
            await first.stop()
            # Restart from the durable state_dir; re-register the new
            # address; the inventory (digests and all) is back.
            reborn = CheckpointDaemon(name="a", state_dir=tmp_path)
            await reborn.start()
            try:
                registry.register("a", reborn.host, reborn.port)
                after = (await registry.poll("a")).inventory.checkpoint_for("vm")
                assert after is not None
                assert after.sketch == before.sketch
                assert after.pages == before.pages
            finally:
                await reborn.stop()

        asyncio.run(main())


class TestMidResultDisconnect:
    """ISSUE S2: RESULT replay without double-counted recovery."""

    def test_executor_retry_replays_result_idempotently(self, tmp_path):
        get_registry().reset()
        hashes = build_hashes()

        async def main():
            async with CheckpointDaemon(state_dir=tmp_path) as daemon:
                daemon.inject_disconnect(mid_result=True)
                source = MigrationSource(
                    SourceState("vm", hashes, PageStore()),
                    QEMU,
                    config=NO_INNER_RETRY,
                )
                executor = MigrationExecutor(
                    AdmissionLimits(max_attempts=3, retry_backoff_s=0.001)
                )
                outcome = await executor.run(
                    source, "host", daemon.host, daemon.port
                )
                return outcome, daemon

        outcome, daemon = asyncio.run(main())
        registry = get_registry()
        # The first attempt carried every page and the session committed
        # before the injected abort; the executor's second attempt got a
        # pure RESULT replay — nothing re-sent, nothing re-adopted.
        assert outcome.ok
        assert outcome.attempts == 2
        assert registry.counter("daemon.result_replays").value == 1
        assert registry.counter("daemon.sessions.completed").value == 1
        assert registry.counter("orchestrator.migrations.retried").value == 1
        # No daemon restart happened, so nothing was ever recovered.
        assert registry.counter("repo.recovered_checkpoints").value == 0
        store = PageStore()
        assert daemon.checkpoints["vm"].slot_digests == [
            store.digest_for(int(c)) for c in hashes
        ]

    def test_restart_after_mid_result_counts_recovery_once(self, tmp_path):
        get_registry().reset()
        hashes = build_hashes()

        async def first_life():
            async with CheckpointDaemon(state_dir=tmp_path) as daemon:
                daemon.inject_disconnect(mid_result=True)
                source = MigrationSource(
                    SourceState("vm", hashes, PageStore()),
                    QEMU,
                    config=NO_INNER_RETRY,
                )
                source.session_id = "vm-sticky"
                with pytest.raises(Exception):
                    await source.migrate(daemon.host, daemon.port)

        asyncio.run(first_life())
        registry = get_registry()
        assert registry.counter("repo.recovered_checkpoints").value == 0

        async def second_life():
            # The daemon restarts; the source's executor-driven retry
            # reconnects with the same session and gets the replay.
            async with CheckpointDaemon(state_dir=tmp_path) as daemon:
                source = MigrationSource(
                    SourceState("vm", hashes, PageStore()),
                    QEMU,
                    config=NO_INNER_RETRY,
                )
                source.session_id = "vm-sticky"
                executor = MigrationExecutor(
                    AdmissionLimits(max_attempts=2, retry_backoff_s=0.001)
                )
                return await executor.run(
                    source, "host", daemon.host, daemon.port
                )

        outcome = asyncio.run(second_life())
        assert outcome.ok
        assert outcome.metrics.payload_bytes == 0  # pure replay
        # Recovery ran exactly once (the restart), and the replay did
        # not re-adopt — so the counter stays at one checkpoint.
        assert registry.counter("repo.recovered_checkpoints").value == 1
        assert registry.counter("daemon.result_replays").value == 1


class TestLiveVdiCrossValidation:
    """The acceptance criterion: live within 5% of analytic VeCycle."""

    def test_ping_pong_schedule_matches_analytic(self, tiny_trace):
        get_registry().reset()
        schedule = ping_pong_schedule(
            4.0, 6, host_a="workstation", host_b="consolidation-server"
        )
        result = asyncio.run(
            replay_vdi_live(
                tiny_trace,
                schedule=schedule,
                policy=BestCheckpoint(),
                config=FAST,
            )
        )
        assert result.num_migrations == 6
        assert result.within(0.05), result.summary()
        # The paper's point: recycling makes later migrations cheap.
        assert result.records[1].live_bytes < result.records[0].live_bytes
        # After the first (fallback) placement, the sketches steer every
        # migration to the host holding the previous state.
        assert all(r.score > 0 for r in result.records[1:])
        # Acceptance: the orchestrator metrics are visible.
        names = get_registry().names()
        assert "orchestrator.placements" in names
        assert "orchestrator.migrations.active" in names
        assert "orchestrator.score.best-checkpoint" in names
        assert (
            get_registry().counter("orchestrator.placements").value
            == result.num_migrations
        )

    def test_figure8_vdi_schedule_matches_analytic(self, tiny_trace):
        schedule = vdi_schedule(1)  # one weekday: morning + evening
        result = asyncio.run(
            replay_vdi_live(tiny_trace, schedule=schedule, config=FAST)
        )
        assert result.num_migrations == 2
        assert result.within(0.05), result.summary()


class TestOrchestratedPlacement:
    def test_three_host_cluster_prefers_checkpoint_holder(self):
        async def main():
            pagestore = PageStore()
            hashes = build_hashes()
            daemons = []
            registry = ClusterRegistry()
            for name in ("a", "b", "c"):
                daemon = CheckpointDaemon(name=name, pagestore=pagestore)
                await daemon.start()
                daemons.append(daemon)
                registry.register(name, daemon.host, daemon.port)
            try:
                # Host c already holds the VM's history; a and b do not.
                daemons[2].install_checkpoint("vm", Fingerprint(hashes=hashes))
                orchestrator = Orchestrator(
                    registry,
                    BestCheckpoint(),
                    config=FAST,
                    pagestore=pagestore,
                )
                decision, outcome = await orchestrator.migrate_vm(
                    "vm", hashes, source_host="a"
                )
                assert decision.destination == "c"
                assert decision.score > 0.9
                assert outcome.ok
                # Checksums only — the pages were already there.
                assert outcome.metrics.pages_full == 0
                assert orchestrator.locations["vm"] == "c"
            finally:
                for daemon in daemons:
                    await daemon.stop()

        asyncio.run(main())
