"""The telemetry plane over real daemons: the ISSUE acceptance tests."""

import asyncio

import numpy as np
import pytest

from repro.cluster.schedule import ping_pong_schedule
from repro.core.strategies import QEMU
from repro.mem.pagestore import PageStore
from repro.obs import flight
from repro.obs.flight import FLIGHT_DIR_ENV, read_dump
from repro.obs.metrics import get_registry
from repro.obs.prometheus import parse_exposition
from repro.obs.telemetry import set_active_aggregator
from repro.orchestrator import (
    AdmissionLimits,
    BestCheckpoint,
    ClusterRegistry,
    MigrationExecutor,
    TelemetryAggregator,
    replay_vdi_live,
)
from repro.runtime import (
    CheckpointDaemon,
    MigrationSource,
    RetryPolicy,
    RuntimeConfig,
    SourceState,
)

N = 512
FAST = RuntimeConfig(
    io_timeout_s=5.0,
    connect_timeout_s=5.0,
    retry=RetryPolicy(max_attempts=3, base_backoff_s=0.01, max_backoff_s=0.05),
    time_scale=0.0,
)
NO_INNER_RETRY = RuntimeConfig(
    io_timeout_s=5.0,
    connect_timeout_s=5.0,
    retry=RetryPolicy(max_attempts=1, base_backoff_s=0.01),
    time_scale=0.0,
)


def build_hashes(seed=7):
    rng = np.random.default_rng(seed)
    return rng.integers(1, 2**62, size=N, dtype=np.uint64)


def labelled(series, key):
    """Sum a parsed exposition series over samples carrying ``key``."""
    return sum(
        value
        for labels, value in series.items()
        if any(k == key for k, _ in labels)
    )


class TestLivePrometheusAcceptance:
    """Ping-pong with --metrics-port: scraped series match MigrationMetrics."""

    def test_scraped_exposition_matches_run_metrics(self, tiny_trace):
        get_registry().reset()
        schedule = ping_pong_schedule(4.0, 6, host_a="a", host_b="b")
        result = asyncio.run(
            replay_vdi_live(
                tiny_trace,
                schedule=schedule,
                policy=BestCheckpoint(),
                config=FAST,
                metrics_port=0,
            )
        )
        set_active_aggregator(None)
        assert result.metrics_port and result.metrics_port > 0
        # prometheus_text was scraped over real HTTP from the bound port.
        parsed = parse_exposition(result.prometheus_text)

        # Recycled/transferred bytes: per-host wire series vs the run's
        # MigrationMetrics sink stats, within 1%.
        recycled = labelled(parsed["vecycle_recycled_bytes_total"], "host")
        expected_recycled = sum(r.recycled_bytes for r in result.records)
        assert expected_recycled > 0
        assert recycled == pytest.approx(expected_recycled, rel=0.01)
        # The per-VM label dimension carries the same total.
        assert labelled(
            parsed["vecycle_recycled_bytes_total"], "vm"
        ) == pytest.approx(expected_recycled, rel=0.01)

        transferred = labelled(
            parsed["vecycle_transferred_bytes_total"], "host"
        )
        expected_transferred = sum(
            o.metrics.payload_bytes for o in result.outcomes
        )
        assert transferred == pytest.approx(expected_transferred, rel=0.01)

        # Downtime histogram: _sum and _count match the outcomes.
        downtime_sum = sum(
            parsed["vecycle_migration_downtime_seconds_sum"].values()
        )
        expected_downtime = sum(o.downtime_s for o in result.outcomes)
        assert expected_downtime > 0
        assert downtime_sum == pytest.approx(expected_downtime, rel=0.01)
        count = sum(
            parsed["vecycle_migration_downtime_seconds_count"].values()
        )
        assert count == result.num_migrations
        inf_buckets = [
            value
            for labels, value in parsed[
                "vecycle_migration_downtime_seconds_bucket"
            ].items()
            if ("le", "+Inf") in labels
        ]
        assert sum(inf_buckets) == result.num_migrations

    def test_aggregator_overhead_within_five_percent(self, tiny_trace):
        get_registry().reset()
        schedule = ping_pong_schedule(4.0, 6, host_a="a", host_b="b")
        result = asyncio.run(
            replay_vdi_live(
                tiny_trace, schedule=schedule, config=FAST, metrics_port=0
            )
        )
        set_active_aggregator(None)
        telemetry = result.telemetry
        assert telemetry["polls"] > 0
        assert telemetry["poll_failures"] == 0
        assert telemetry["overhead_ratio"] <= 0.05, telemetry
        assert 0.0 < telemetry["recycle_ratio"] < 1.0


class TestFlightRecorderAcceptance:
    """A daemon killed mid-run leaves a parseable dump with RESULT spans."""

    def test_killed_daemon_dump_contains_result_phase(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(FLIGHT_DIR_ENV, str(tmp_path))
        hashes = build_hashes()

        async def main():
            async with CheckpointDaemon(name="victim") as daemon:
                source = MigrationSource(
                    SourceState("vm", hashes, PageStore()),
                    QEMU,
                    config=FAST,
                )
                await source.migrate(daemon.host, daemon.port)
                # The process dies here: SIGUSR2/excepthook would call
                # dump_all exactly like this before the state is lost.
                return flight.dump_all("simulated kill")

        paths = asyncio.run(main())
        victim_dumps = [p for p in paths if "daemon-victim" in p]
        assert victim_dumps, paths
        dump = read_dump(victim_dumps[0])
        assert dump["header"]["name"] == "daemon-victim"
        kinds = [event["kind"] for event in dump["events"]]
        assert "session" in kinds
        results = [
            event for event in dump["events"]
            if event["kind"] == "daemon.result"
        ]
        assert results, kinds
        assert results[-1]["ok"] is True
        assert results[-1]["vm"] == "vm"
        assert results[-1]["pages_received"] == N

    def test_failed_outcome_carries_flight_dump(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FLIGHT_DIR_ENV, str(tmp_path))
        get_registry().reset()
        hashes = build_hashes()

        async def main():
            async with CheckpointDaemon(name="flaky") as daemon:
                daemon.inject_disconnect(after_messages=5)
                source = MigrationSource(
                    SourceState("vm", hashes, PageStore()),
                    QEMU,
                    config=NO_INNER_RETRY,
                )
                executor = MigrationExecutor(
                    AdmissionLimits(max_attempts=1, retry_backoff_s=0.001)
                )
                return await executor.run(
                    source, "host", daemon.host, daemon.port
                )

        outcome = asyncio.run(main())
        assert not outcome.ok
        assert outcome.flight_record is not None
        dump = read_dump(outcome.flight_record)
        failures = [
            event for event in dump["events"]
            if event["kind"] == "migration.failed"
        ]
        assert failures and failures[-1]["vm"] == "vm"


class TestAggregatorOverWire:
    def test_restart_detection_preserves_accumulated_history(self):
        async def main():
            registry = ClusterRegistry()
            aggregator = TelemetryAggregator(registry)
            hashes = build_hashes()

            first = CheckpointDaemon(name="a")
            await first.start()
            registry.register("a", first.host, first.port)
            source = MigrationSource(
                SourceState("vm", hashes, PageStore()), QEMU, config=FAST
            )
            await source.migrate(first.host, first.port)
            snapshot = await aggregator.poll("a")
            assert snapshot is not None and snapshot.seq >= 1
            before = aggregator.host_instruments()["a"]
            received_before = before["daemon.pages_received"]["value"]
            assert received_before == N
            port = first.port
            await first.stop()

            # Restart: counters begin again from zero on the same address.
            reborn = CheckpointDaemon(name="a")
            await reborn.start(port=port)
            try:
                source = MigrationSource(
                    SourceState("vm2", hashes, PageStore()),
                    QEMU,
                    config=FAST,
                )
                await source.migrate(reborn.host, reborn.port)
                await aggregator.poll("a")
            finally:
                await reborn.stop()
            assert aggregator.restarts == 1
            after = aggregator.host_instruments()["a"]
            # History from before the restart plus the new life's counts:
            # nothing already aggregated was lost or double-counted.
            assert after["daemon.pages_received"]["value"] == 2 * N

        asyncio.run(main())

    def test_unreachable_daemon_counts_a_failure(self):
        async def main():
            registry = ClusterRegistry()
            aggregator = TelemetryAggregator(registry, poll_timeout_s=0.5)
            async with CheckpointDaemon(name="gone") as daemon:
                registry.register("gone", daemon.host, daemon.port)
            # stopped: the address no longer answers
            snapshot = await aggregator.poll("gone")
            assert snapshot is None
            assert aggregator.poll_failures == 1
            assert aggregator.host_instruments() == {}

        asyncio.run(main())

    def test_daemon_answers_telemetry_probe_without_session(self):
        async def main():
            registry = ClusterRegistry()
            aggregator = TelemetryAggregator(registry)
            async with CheckpointDaemon(name="idle") as daemon:
                registry.register("idle", daemon.host, daemon.port)
                one = await aggregator.poll("idle")
                two = await aggregator.poll("idle")
                assert one is not None and two is not None
                assert two.seq == one.seq + 1
                assert two.host == "idle"
                probes = two.instruments["daemon.telemetry_probes"]
                assert probes["value"] == 2.0

        asyncio.run(main())
