"""Pinned regressions: orchestrator wallclock is an injected dependency.

Found by ``vecycle lint``'s determinism rule: ``ClusterRegistry`` and
``TelemetryAggregator`` read ``time.time()`` directly, so chaos-soak
replays of heartbeat/telemetry loss produced timestamps that differed
run to run.  Both now take a ``clock`` callable (default wallclock);
these tests pin that the injected clock is the only time source behind
``last_seen``, series samples, and dashboard ages.
"""

import asyncio

from repro.orchestrator.registry import ClusterRegistry
from repro.orchestrator.telemetry import TelemetryAggregator
from repro.runtime import CheckpointDaemon


class _TickClock:
    """A deterministic clock: advances by one second per reading."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


def test_registry_last_seen_comes_from_injected_clock():
    clock = _TickClock(start=500.0)

    async def scenario():
        registry = ClusterRegistry(clock=clock)
        async with CheckpointDaemon(name="a") as daemon:
            registry.register("a", daemon.host, daemon.port)
            record = await registry.poll("a")
            return record.alive, record.last_seen

    alive, last_seen = asyncio.run(scenario())
    assert alive
    assert last_seen == 501.0  # first (and only) clock reading


def test_aggregator_sample_and_dashboard_use_injected_clock():
    clock = _TickClock(start=2000.0)

    async def scenario():
        registry = ClusterRegistry(controller_id="ctl")
        aggregator = TelemetryAggregator(registry, clock=clock)
        async with CheckpointDaemon(name="a") as daemon:
            registry.register("a", daemon.host, daemon.port)
            await aggregator.poll_all()
            snapshot = aggregator._last["a"]
            view = aggregator.dashboard_view()
            return list(aggregator.series), view, snapshot

    series, view, snapshot = asyncio.run(scenario())
    # One poll_all = one series sample; its stamp is the clock reading.
    assert [sample["taken_at"] for sample in series] == [2001.0]
    # The dashboard ages the daemon's snapshot with the same injected
    # clock: reading two (2002.0) minus the snapshot's own stamp.
    (host,) = view["hosts"]
    assert host["age_s"] == 2002.0 - snapshot.taken_at
    assert view["taken_at"] == 2003.0


def test_default_clock_is_wallclock():
    # The default stays time.time so operator-facing ages remain real.
    registry = ClusterRegistry()
    aggregator = TelemetryAggregator(registry)
    import time

    assert registry._clock is time.time
    assert aggregator._clock is time.time
