"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import get_registry, get_tracer


@pytest.fixture(autouse=True)
def clean_obs_state():
    """CLI runs toggle the global tracer; keep tests independent."""
    yield
    tracer = get_tracer()
    tracer.disable()
    tracer.reset()
    get_registry().reset()


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("table1", "fig1", "fig3", "fig5", "fig6", "fig7",
                        "fig8", "rates", "migrate", "runtime", "postcopy",
                        "consolidate", "gang", "summary", "obs"):
            assert command in text

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_every_subcommand_accepts_obs_flags(self):
        parser = build_parser()
        for command in ("table1", "fig8", "migrate", "runtime", "obs"):
            args = parser.parse_args(
                [command, "--trace-out", "/tmp/t.json", "--format", "jsonl",
                 "--trace-summary", "-v"]
            )
            assert args.trace_out == "/tmp/t.json"
            assert args.trace_format == "jsonl"
            assert args.trace_summary and args.verbose == 1


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Server A" in out and "8 GiB" in out.replace("     8 GiB", "8 GiB")

    def test_rates(self, capsys):
        assert main(["rates"]) == 0
        assert "md5" in capsys.readouterr().out

    def test_migrate_vecycle(self, capsys):
        assert main(["migrate", "--size-mib", "32", "--strategy", "vecycle"]) == 0
        out = capsys.readouterr().out
        assert "similarity to checkpoint" in out

    def test_migrate_qemu_no_checkpoint_line(self, capsys):
        assert main(["migrate", "--size-mib", "32", "--strategy", "qemu"]) == 0
        out = capsys.readouterr().out
        assert "similarity to checkpoint" not in out

    def test_migrate_with_updates(self, capsys):
        assert main([
            "migrate", "--size-mib", "32", "--strategy", "vecycle",
            "--updates-percent", "50",
        ]) == 0
        assert "pages:" in capsys.readouterr().out

    def test_runtime_live_migration(self, capsys):
        assert main(["runtime", "--size-mib", "4", "--strategy", "vecycle"]) == 0
        out = capsys.readouterr().out
        assert "-> completed" in out
        assert "cross-validation" in out
        assert "delta=0" in out  # exact payload agreement

    def test_runtime_with_disconnect_injection(self, capsys):
        assert main([
            "runtime", "--size-mib", "4", "--strategy", "qemu",
            "--inject-disconnect", "50", "--link", "none",
        ]) == 0
        out = capsys.readouterr().out
        assert "retries=1" in out

    def test_fig6_custom_sizes(self, capsys):
        assert main(["fig6", "--sizes", "64,128"]) == 0
        out = capsys.readouterr().out
        assert "64Mi" in out and "128Mi" in out

    def test_fig8_short(self, capsys):
        assert main(["fig8", "--epochs", "144"]) == 0
        assert "vecycle" in capsys.readouterr().out

    def test_fig1_short(self, capsys):
        # Uses the full 6-machine panel at reduced epochs; slowest CLI
        # test but still seconds.
        assert main(["fig1", "--epochs", "48"]) == 0
        assert "Crawler A" in capsys.readouterr().out

    def test_fig4_short(self, capsys):
        assert main(["fig4", "--epochs", "48"]) == 0
        assert "dup mean" in capsys.readouterr().out

    def test_fig3_worked_example(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "relocated" in out and "hashes+dedup" in out

    def test_fig2_with_plot(self, capsys):
        assert main(["fig2", "--epochs", "96", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "hours between snapshots" in out  # the ASCII chart

    def test_postcopy(self, capsys):
        assert main(["postcopy", "--size-mib", "64"]) == 0
        out = capsys.readouterr().out
        assert "fill=" in out and "faults=" in out

    def test_gang(self, capsys):
        assert main(["gang", "--vms", "3", "--shared", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "cross-VM dedup" in out
        assert "merged checkpoints" in out

    def test_consolidate_small(self, capsys):
        assert main(["consolidate", "--vms", "2", "--days", "1"]) == 0
        out = capsys.readouterr().out
        assert "vecycle+dedup" in out and "migrations" in out

    def test_summary_quick(self, capsys):
        assert main(["summary"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "FAIL" not in out


class TestObservabilityFlags:
    def test_runtime_writes_chrome_trace(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        assert main([
            "runtime", "--size-mib", "4", "--strategy", "vecycle",
            "--trace-out", str(path), "--format", "chrome",
        ]) == 0
        assert "-> completed" in capsys.readouterr().out
        trace = json.loads(path.read_text())
        names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert {"runtime.migrate", "connect", "announce", "round",
                "daemon.session"} <= names
        assert "runtime.migrations.completed" in trace["otherData"]["metrics"]

    def test_trace_summary_goes_to_stderr(self, capsys):
        assert main([
            "migrate", "--size-mib", "32", "--strategy", "vecycle",
            "--trace-summary",
        ]) == 0
        captured = capsys.readouterr()
        assert "similarity to checkpoint" in captured.out
        assert "migration.simulate" in captured.err
        assert "migration.simulate" not in captured.out

    def test_obs_demo_with_summary(self, capsys):
        assert main(["obs", "--size-mib", "4", "--summary"]) == 0
        out = capsys.readouterr().out
        assert "-> completed" in out
        assert "runtime.migrate" in out

    def test_obs_converts_jsonl_to_chrome(self, capsys, tmp_path):
        jsonl = tmp_path / "run.jsonl"
        chrome = tmp_path / "run.json"
        assert main([
            "obs", "--size-mib", "4",
            "--trace-out", str(jsonl), "--format", "jsonl",
        ]) == 0
        capsys.readouterr()
        assert main([
            "obs", "--from", str(jsonl),
            "--trace-out", str(chrome), "--format", "chrome", "--summary",
        ]) == 0
        out = capsys.readouterr().out
        assert "loaded" in out and "wrote chrome trace" in out
        assert "traceEvents" in json.loads(chrome.read_text())

    def test_verbose_logs_stay_off_stdout(self, capsys):
        assert main(["fig8", "--epochs", "144", "-v"]) == 0
        captured = capsys.readouterr()
        assert "vecycle" in captured.out
        assert "replaying VDI schedule" in captured.err
        assert "replaying VDI schedule" not in captured.out
