"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("table1", "fig1", "fig3", "fig5", "fig6", "fig7",
                        "fig8", "rates", "migrate", "runtime", "postcopy",
                        "consolidate", "gang", "summary"):
            assert command in text

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Server A" in out and "8 GiB" in out.replace("     8 GiB", "8 GiB")

    def test_rates(self, capsys):
        assert main(["rates"]) == 0
        assert "md5" in capsys.readouterr().out

    def test_migrate_vecycle(self, capsys):
        assert main(["migrate", "--size-mib", "32", "--strategy", "vecycle"]) == 0
        out = capsys.readouterr().out
        assert "similarity to checkpoint" in out

    def test_migrate_qemu_no_checkpoint_line(self, capsys):
        assert main(["migrate", "--size-mib", "32", "--strategy", "qemu"]) == 0
        out = capsys.readouterr().out
        assert "similarity to checkpoint" not in out

    def test_migrate_with_updates(self, capsys):
        assert main([
            "migrate", "--size-mib", "32", "--strategy", "vecycle",
            "--updates-percent", "50",
        ]) == 0
        assert "pages:" in capsys.readouterr().out

    def test_runtime_live_migration(self, capsys):
        assert main(["runtime", "--size-mib", "4", "--strategy", "vecycle"]) == 0
        out = capsys.readouterr().out
        assert "-> completed" in out
        assert "cross-validation" in out
        assert "delta=0" in out  # exact payload agreement

    def test_runtime_with_disconnect_injection(self, capsys):
        assert main([
            "runtime", "--size-mib", "4", "--strategy", "qemu",
            "--inject-disconnect", "50", "--link", "none",
        ]) == 0
        out = capsys.readouterr().out
        assert "retries=1" in out

    def test_fig6_custom_sizes(self, capsys):
        assert main(["fig6", "--sizes", "64,128"]) == 0
        out = capsys.readouterr().out
        assert "64Mi" in out and "128Mi" in out

    def test_fig8_short(self, capsys):
        assert main(["fig8", "--epochs", "144"]) == 0
        assert "vecycle" in capsys.readouterr().out

    def test_fig1_short(self, capsys):
        # Uses the full 6-machine panel at reduced epochs; slowest CLI
        # test but still seconds.
        assert main(["fig1", "--epochs", "48"]) == 0
        assert "Crawler A" in capsys.readouterr().out

    def test_fig4_short(self, capsys):
        assert main(["fig4", "--epochs", "48"]) == 0
        assert "dup mean" in capsys.readouterr().out

    def test_fig3_worked_example(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "relocated" in out and "hashes+dedup" in out

    def test_fig2_with_plot(self, capsys):
        assert main(["fig2", "--epochs", "96", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "hours between snapshots" in out  # the ASCII chart

    def test_postcopy(self, capsys):
        assert main(["postcopy", "--size-mib", "64"]) == 0
        out = capsys.readouterr().out
        assert "fill=" in out and "faults=" in out

    def test_gang(self, capsys):
        assert main(["gang", "--vms", "3", "--shared", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "cross-VM dedup" in out
        assert "merged checkpoints" in out

    def test_consolidate_small(self, capsys):
        assert main(["consolidate", "--vms", "2", "--days", "1"]) == 0
        out = capsys.readouterr().out
        assert "vecycle+dedup" in out and "migrations" in out

    def test_summary_quick(self, capsys):
        assert main(["summary"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "FAIL" not in out
