"""Cross-module property-based tests (hypothesis).

Invariants that must hold for *any* memory evolution, not just the
calibrated workloads: traffic conservation, similarity bounds, protocol
correctness under arbitrary mutation sequences.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.checkpoint import Checkpoint, ChecksumIndex
from repro.core.fingerprint import Fingerprint
from repro.core.protocol import WireFormat, first_round_traffic
from repro.core.strategies import QEMU, VECYCLE
from repro.core.transfer import Method, compute_transfer_set
from repro.mem.image import MemoryImage
from repro.migration.precopy import simulate_migration
from repro.migration.vm import SimVM
from repro.net.link import LAN_1GBE

MIB = 2**20


# A mutation step: (kind, amount) applied to a 128-page image.
mutation_steps = st.lists(
    st.tuples(
        st.sampled_from(["fresh", "dup", "zero", "relocate"]),
        st.integers(min_value=1, max_value=32),
    ),
    min_size=0,
    max_size=8,
)


def apply_mutations(image: MemoryImage, steps, seed: int) -> None:
    rng = np.random.default_rng(seed)
    for kind, amount in steps:
        slots = image.sample_slots(amount, rng)
        if kind == "fresh":
            image.write_fresh(slots)
        elif kind == "dup":
            image.write_duplicate_of(slots, int(image.sample_slots(1, rng)[0]))
        elif kind == "zero":
            image.zero(slots)
        elif kind == "relocate":
            image.relocate(slots, rng)


class TestMutationInvariants:
    @given(mutation_steps, st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_vecycle_never_beats_nothing_and_never_loses_to_full(self, steps, seed):
        image = MemoryImage(128, zero_filled=False)
        checkpoint_fp = image.fingerprint()
        apply_mutations(image, steps, seed)
        current = image.fingerprint()
        for method in Method:
            ts = compute_transfer_set(method, current, checkpoint=checkpoint_fp)
            assert 0 <= ts.full_pages <= 128

    @given(mutation_steps, st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_relocation_only_mutations_are_free_for_vecycle(self, steps, seed):
        relocate_only = [(k, n) for k, n in steps if k == "relocate"]
        image = MemoryImage(128, zero_filled=False)
        checkpoint_fp = image.fingerprint()
        apply_mutations(image, relocate_only, seed)
        ts = compute_transfer_set(
            Method.HASHES, image.fingerprint(), checkpoint=checkpoint_fp
        )
        assert ts.full_pages == 0  # all content still in the checkpoint

    @given(mutation_steps, st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_traffic_conservation(self, steps, seed):
        image = MemoryImage(128, zero_filled=False)
        checkpoint_fp = image.fingerprint()
        apply_mutations(image, steps, seed)
        wire = WireFormat()
        ts = compute_transfer_set(
            Method.HASHES, image.fingerprint(), checkpoint=checkpoint_fp
        )
        traffic = first_round_traffic(ts, wire)
        reconstructed = (
            ts.full_pages * wire.full_page_message
            + ts.checksum_only_pages * wire.checksum_message
        )
        assert traffic.payload_bytes == reconstructed

    @given(mutation_steps, st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_similarity_matches_checkpoint_index_view(self, steps, seed):
        image = MemoryImage(128, zero_filled=False)
        checkpoint_fp = image.fingerprint()
        apply_mutations(image, steps, seed)
        current = image.fingerprint()
        index = ChecksumIndex(checkpoint_fp)
        # Every unique hash the similarity metric counts as shared must
        # be findable through the destination's index, and vice versa.
        shared = np.intersect1d(
            current.unique_hashes(), checkpoint_fp.unique_hashes(), assume_unique=True
        )
        for value in shared:
            assert index.lookup(int(value)) is not None
        missing = np.setdiff1d(current.unique_hashes(), checkpoint_fp.unique_hashes())
        for value in missing:
            assert index.lookup(int(value)) is None


class TestSimulationProperties:
    @given(st.integers(0, 50), st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_migration_time_positive_and_traffic_bounded(self, dirty_pages, seed):
        vm = SimVM.idle("vm", 4 * MIB, seed=seed)
        vm.image.write_fresh(np.arange(vm.num_pages))
        ckpt = Checkpoint(vm_id="vm", fingerprint=vm.fingerprint())
        if dirty_pages:
            vm.write_slots(
                np.random.default_rng(seed).choice(
                    vm.num_pages, size=min(dirty_pages, vm.num_pages), replace=False
                )
            )
        report = simulate_migration(vm, VECYCLE, LAN_1GBE, checkpoint=ckpt)
        assert report.total_time_s > 0
        full = simulate_migration(vm, QEMU, LAN_1GBE)
        assert report.tx_bytes <= full.tx_bytes

    @given(st.integers(1, 60))
    @settings(max_examples=10, deadline=None)
    def test_more_updates_more_traffic(self, step):
        def traffic_for(updates):
            vm = SimVM.idle("vm", 4 * MIB, seed=1)
            vm.image.write_fresh(np.arange(vm.num_pages))
            ckpt = Checkpoint(vm_id="vm", fingerprint=vm.fingerprint())
            vm.write_slots(np.arange(updates))
            return simulate_migration(
                vm, VECYCLE, LAN_1GBE, checkpoint=ckpt
            ).tx_bytes

        assert traffic_for(step) <= traffic_for(step + 64)
