"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.checkpoint import Checkpoint
from repro.mem.image import MemoryImage
from repro.mem.mutation import boot_populate
from repro.migration.vm import SimVM
from repro.traces.generate import Trace, generate_trace
from repro.traces.presets import MachineSpec
from repro.traces.workload import ActivityPattern, WorkloadParams

MIB = 2**20


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def small_image(rng) -> MemoryImage:
    """A populated 256-page image (1 MiB of 4 KiB pages)."""
    image = MemoryImage(256)
    boot_populate(
        image, rng, used_fraction=0.9, duplicate_fraction=0.1, zero_fraction=0.05
    )
    return image


@pytest.fixture
def small_vm(rng) -> SimVM:
    """A 16 MiB idle VM with populated memory."""
    vm = SimVM.idle("test-vm", 16 * MIB, seed=5)
    boot_populate(
        vm.image, rng, used_fraction=0.9, duplicate_fraction=0.1, zero_fraction=0.05
    )
    return vm


@pytest.fixture
def small_checkpoint(small_vm) -> Checkpoint:
    return Checkpoint(
        vm_id=small_vm.vm_id,
        fingerprint=small_vm.fingerprint(),
        generation_vector=small_vm.tracker.snapshot(),
    )


def tiny_machine(
    seed: int = 99,
    activity: ActivityPattern = ActivityPattern.DIURNAL,
    **overrides,
) -> MachineSpec:
    """A small, fast machine spec for trace tests."""
    params = WorkloadParams(
        num_pages=2048,
        stable_fraction=0.2,
        hot_fraction=0.3,
        hot_write_share=0.8,
        base_update_fraction=0.3,
        duplicate_fraction=0.08,
        zero_fraction=0.03,
        relocate_fraction=0.01,
        recall_fraction=0.2,
        activity=activity,
        activity_floor=0.05,
        **overrides,
    )
    return MachineSpec(
        name="Tiny",
        os="Linux",
        trace_id="tiny",
        ram_bytes=2048 * 4096,
        trace_days=1,
        params=params,
        seed=seed,
    )


@pytest.fixture(scope="session")
def tiny_trace() -> Trace:
    """A 1-day trace of a small machine, shared across tests."""
    return generate_trace(tiny_machine(), num_epochs=48)
