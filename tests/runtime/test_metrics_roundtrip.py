"""MigrationMetrics: dict round-trip and internal-consistency checks."""

from __future__ import annotations

import pytest

from repro.runtime.metrics import MigrationMetrics, RoundMetrics


def _sample() -> MigrationMetrics:
    metrics = MigrationMetrics(vm_id="vm0", mode="vecycle", link="loopback")
    metrics.count("full", 4128)
    metrics.count("full", 4128)
    metrics.count("checksum", 25)
    metrics.announce_bytes = 6200
    metrics.control_bytes = 350
    metrics.retries = 1
    metrics.retransmitted_bytes = 4128
    metrics.pages_full = 2
    metrics.pages_checksum_only = 1
    metrics.pages_skipped = 3
    metrics.checksummed_pages = 6
    metrics.rounds = [
        RoundMetrics(round_no=1, messages=3, bytes_sent=8281, duration_s=0.01),
        RoundMetrics(round_no=2, messages=1, bytes_sent=4128, duration_s=0.002),
    ]
    metrics.wall_time_s = 0.25
    metrics.modelled_time_s = 1.5
    metrics.outcome = "completed"
    metrics.sink_stats = {"reused_in_place": 1, "reused_from_store": 0,
                          "unique_contents": 2}
    return metrics


def test_to_dict_from_dict_round_trip():
    original = _sample()
    rebuilt = MigrationMetrics.from_dict(original.to_dict())
    assert rebuilt.to_dict() == original.to_dict()
    # derived quantities survive too
    assert rebuilt.payload_bytes == original.payload_bytes
    assert rebuilt.total_bytes == original.total_bytes
    assert rebuilt.num_rounds == 2
    assert rebuilt.messages == original.messages
    assert rebuilt.rounds[1].bytes_sent == 4128


def test_as_dict_alias_preserved():
    metrics = _sample()
    assert metrics.as_dict() == metrics.to_dict()


def test_from_dict_tolerates_minimal_payload():
    rebuilt = MigrationMetrics.from_dict(
        {"vm_id": "v", "mode": "qemu", "link": "unshaped"}
    )
    assert rebuilt.payload_bytes == 0
    assert rebuilt.outcome == "pending"
    assert rebuilt.rounds == []


def test_validate_accepts_consistent_metrics():
    _sample().validate()


def test_validate_rejects_negative_retransmit():
    metrics = _sample()
    metrics.retransmitted_bytes = -1
    with pytest.raises(ValueError, match="negative"):
        metrics.validate()


def test_validate_rejects_retransmit_exceeding_payload():
    metrics = _sample()
    metrics.retransmitted_bytes = metrics.payload_bytes + 1
    with pytest.raises(ValueError, match="double-counted"):
        metrics.validate()


def test_validate_rejects_retransmit_without_retry():
    metrics = _sample()
    metrics.retries = 0
    with pytest.raises(ValueError, match="without any retry"):
        metrics.validate()
