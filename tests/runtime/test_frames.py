"""Unit tests for the runtime frame codec."""

import asyncio
import struct

import pytest

from repro.core.checksum import get_algorithm
from repro.core.protocol import ANNOUNCE_FRAME_OVERHEAD, WireFormat
from repro.runtime.frames import (
    DIGEST_DELTA_OVERHEAD,
    Frame,
    FrameCodec,
    FrameError,
    TYPE_ANNOUNCE,
    TYPE_COMPLETE,
    TYPE_DIGEST_DELTA,
    TYPE_ERROR,
    TYPE_HELLO,
    TYPE_PAGE_CHECKSUM,
    TYPE_PAGE_FULL,
    TYPE_PAGE_PLAIN,
    TYPE_PAGE_REF,
    TYPE_READY,
    TYPE_ROUND,
    TYPE_TELEMETRY,
    expect_frame,
)

WIRE = WireFormat()
PAGE = bytes(range(256)) * (WIRE.page_size // 256)
DIGEST = bytes(16)


def reader_for(blob: bytes):
    """An ``async (n) -> bytes`` reader over an in-memory byte string."""
    view = memoryview(blob)
    offset = 0

    async def recv(n: int) -> bytes:
        nonlocal offset
        if offset + n > len(view):
            raise asyncio.IncompleteReadError(bytes(view[offset:]), n)
        chunk = bytes(view[offset : offset + n])
        offset += n
        return chunk

    return recv


def roundtrip(codec: FrameCodec, encoded: bytes) -> Frame:
    return asyncio.run(codec.read_frame(reader_for(encoded)))


class TestPageFrameSizes:
    """Data frames must occupy exactly the analytic message sizes."""

    def test_full(self):
        codec = FrameCodec(WIRE)
        encoded = codec.encode_page_full(7, DIGEST, PAGE)
        assert len(encoded) == WIRE.full_page_message == 9 + 16 + 4096

    def test_checksum(self):
        codec = FrameCodec(WIRE)
        assert len(codec.encode_page_checksum(7, DIGEST)) == WIRE.checksum_message

    def test_ref(self):
        codec = FrameCodec(WIRE)
        assert len(codec.encode_page_ref(7, 3)) == WIRE.ref_message == 9 + 8

    def test_plain(self):
        codec = FrameCodec(WIRE)
        assert len(codec.encode_page_plain(7, PAGE)) == WIRE.plain_page_message

    def test_announce(self):
        codec = FrameCodec(WIRE)
        encoded = codec.encode_announce([DIGEST] * 10)
        assert len(encoded) == WIRE.announce_frame_bytes(10)
        assert len(encoded) == ANNOUNCE_FRAME_OVERHEAD + 10 * 16

    def test_sizes_follow_the_wire_format(self):
        wire = WireFormat(checksum_bytes=8)
        codec = FrameCodec(wire)
        digest8 = bytes(8)
        assert len(codec.encode_page_full(0, digest8, PAGE)) == wire.full_page_message
        assert len(codec.encode_page_checksum(0, digest8)) == wire.checksum_message


class TestRoundtrip:
    def test_page_full(self):
        codec = FrameCodec(WIRE)
        digest = get_algorithm("md5").digest(PAGE)
        frame = roundtrip(codec, codec.encode_page_full(42, digest, PAGE))
        assert frame.type == TYPE_PAGE_FULL
        assert frame.page_no == 42
        assert frame.digest == digest
        assert frame.payload == PAGE
        assert frame.wire_bytes == WIRE.full_page_message

    def test_page_checksum(self):
        codec = FrameCodec(WIRE)
        frame = roundtrip(codec, codec.encode_page_checksum(3, DIGEST))
        assert (frame.type, frame.page_no, frame.digest) == (
            TYPE_PAGE_CHECKSUM, 3, DIGEST,
        )

    def test_page_ref(self):
        codec = FrameCodec(WIRE)
        frame = roundtrip(codec, codec.encode_page_ref(9, 4))
        assert (frame.type, frame.page_no, frame.ref) == (TYPE_PAGE_REF, 9, 4)

    def test_page_plain(self):
        codec = FrameCodec(WIRE)
        frame = roundtrip(codec, codec.encode_page_plain(5, PAGE))
        assert (frame.type, frame.page_no, frame.payload) == (
            TYPE_PAGE_PLAIN, 5, PAGE,
        )

    def test_hello_json(self):
        codec = FrameCodec(WIRE)
        body = {"session": "s1", "vm_id": "vm", "num_pages": 128}
        frame = roundtrip(codec, codec.encode_hello(body))
        assert frame.type == TYPE_HELLO
        assert frame.body == body

    def test_ready(self):
        codec = FrameCodec(WIRE)
        frame = roundtrip(codec, codec.encode_ready(3, 1000, True, False))
        assert frame.type == TYPE_READY
        assert frame.round_no == 3
        assert frame.applied == 1000
        assert frame.announce_follows is True
        assert frame.completed is False

    def test_announce(self):
        codec = FrameCodec(WIRE)
        digests = [bytes([i]) * 16 for i in range(5)]
        frame = roundtrip(codec, codec.encode_announce(digests))
        assert frame.type == TYPE_ANNOUNCE
        assert list(frame.digests) == digests

    def test_round(self):
        codec = FrameCodec(WIRE)
        frame = roundtrip(codec, codec.encode_round(2, 777))
        assert (frame.type, frame.round_no, frame.count) == (TYPE_ROUND, 2, 777)

    def test_complete(self):
        codec = FrameCodec(WIRE)
        frame = roundtrip(codec, codec.encode_complete(4, DIGEST))
        assert (frame.type, frame.count, frame.digest) == (TYPE_COMPLETE, 4, DIGEST)

    def test_telemetry(self):
        codec = FrameCodec(WIRE)
        body = {
            "host": "host-a",
            "seq": 7,
            "instruments": {"c": {"type": "counter", "value": 3.0}},
        }
        frame = roundtrip(codec, codec.encode_telemetry(body))
        assert frame.type == TYPE_TELEMETRY
        assert frame.body == body


class TestErrors:
    def test_unknown_tag(self):
        codec = FrameCodec(WIRE)
        with pytest.raises(FrameError, match="unknown frame type"):
            roundtrip(codec, b"\xff")

    def test_malformed_json(self):
        codec = FrameCodec(WIRE)
        blob = bytes((TYPE_HELLO,)) + (3).to_bytes(4, "big") + b"{{{"
        with pytest.raises(FrameError, match="malformed JSON"):
            roundtrip(codec, blob)

    def test_oversized_json_rejected(self):
        codec = FrameCodec(WIRE)
        blob = bytes((TYPE_HELLO,)) + (1 << 30).to_bytes(4, "big")
        with pytest.raises(FrameError, match="exceeds limit"):
            roundtrip(codec, blob)

    def test_expect_frame_wrong_type(self):
        codec = FrameCodec(WIRE)
        encoded = codec.encode_round(1, 1)
        with pytest.raises(FrameError, match="expected ready"):
            asyncio.run(expect_frame(codec, reader_for(encoded), TYPE_READY))

    def test_expect_frame_surfaces_peer_error(self):
        codec = FrameCodec(WIRE)
        encoded = codec.encode_error({"code": "bad-ref", "message": "nope"})
        with pytest.raises(FrameError, match=r"peer error \[bad-ref\]: nope"):
            asyncio.run(expect_frame(codec, reader_for(encoded), TYPE_READY))

    def test_expect_frame_can_want_error(self):
        codec = FrameCodec(WIRE)
        encoded = codec.encode_error({"code": "x", "message": "y"})
        frame = asyncio.run(expect_frame(codec, reader_for(encoded), TYPE_ERROR))
        assert frame.body == {"code": "x", "message": "y"}

    def test_header_too_small_rejected(self):
        with pytest.raises(ValueError, match="header_bytes"):
            FrameCodec(WireFormat(header_bytes=1))

    def test_unknown_tag_0x7f(self):
        codec = FrameCodec(WIRE)
        with pytest.raises(FrameError, match="unknown frame type 0x7f"):
            roundtrip(codec, b"\x7f")

    def test_oversized_telemetry_body_rejected(self):
        codec = FrameCodec(WIRE)
        blob = bytes((TYPE_TELEMETRY,)) + ((1 << 20) + 1).to_bytes(4, "big")
        with pytest.raises(FrameError, match="exceeds limit"):
            roundtrip(codec, blob)

    def test_truncated_telemetry_mid_length_prefix(self):
        # The peer died after the tag and half the u32 length: the
        # reader must surface the truncation, not hang or misparse.
        codec = FrameCodec(WIRE)
        blob = bytes((TYPE_TELEMETRY,)) + b"\x00\x00"
        with pytest.raises(asyncio.IncompleteReadError):
            roundtrip(codec, blob)

    def test_truncated_telemetry_mid_body(self):
        codec = FrameCodec(WIRE)
        complete = codec.encode_telemetry({"host": "a", "seq": 1})
        with pytest.raises(asyncio.IncompleteReadError):
            roundtrip(codec, complete[:-3])


class TestDigestDelta:
    """DIGEST_DELTA: the O(churn) announce for a named base generation."""

    def _digests(self, start, count):
        return [bytes([start + i]) * 16 for i in range(count)]

    def test_roundtrip(self):
        codec = FrameCodec(WIRE)
        added = self._digests(0, 3)
        removed = self._digests(10, 2)
        frame = roundtrip(codec, codec.encode_digest_delta(5, 2, added, removed))
        assert frame.type == TYPE_DIGEST_DELTA
        assert frame.generation == 5
        assert frame.base_generation == 2
        assert list(frame.digests) == added
        assert list(frame.removed) == removed
        assert frame.count == 3

    def test_wire_bytes_match_layout(self):
        codec = FrameCodec(WIRE)
        added, removed = self._digests(0, 4), self._digests(8, 1)
        encoded = codec.encode_digest_delta(2, 1, added, removed)
        assert len(encoded) == DIGEST_DELTA_OVERHEAD + 5 * WIRE.checksum_bytes
        assert roundtrip(codec, encoded).wire_bytes == len(encoded)

    def test_empty_delta_is_valid(self):
        # A generation can advance without changing the distinct digest
        # set (e.g. slots shuffled between duplicates).
        codec = FrameCodec(WIRE)
        frame = roundtrip(codec, codec.encode_digest_delta(7, 6, [], []))
        assert frame.digests == ()
        assert frame.removed == ()

    def test_expect_frame_accepts_announce_or_delta(self):
        codec = FrameCodec(WIRE)
        encoded = codec.encode_digest_delta(3, 1, self._digests(0, 1), [])
        frame = asyncio.run(expect_frame(
            codec, reader_for(encoded), TYPE_ANNOUNCE, TYPE_DIGEST_DELTA
        ))
        assert frame.type == TYPE_DIGEST_DELTA

    def test_encode_rejects_non_newer_generation(self):
        codec = FrameCodec(WIRE)
        for generation, base in ((2, 2), (1, 2), (0, 0)):
            with pytest.raises(FrameError, match="not newer"):
                codec.encode_digest_delta(generation, base, [], [])

    def test_decode_rejects_non_newer_generation(self):
        # Crafted on the wire (the encoder refuses to produce this).
        codec = FrameCodec(WIRE)
        blob = bytes((TYPE_DIGEST_DELTA,)) + struct.pack(">IIII", 2, 2, 0, 0)
        with pytest.raises(FrameError, match="not newer"):
            roundtrip(codec, blob)

    def test_decode_rejects_oversized_slot_list(self):
        codec = FrameCodec(WIRE)
        huge = (1 << 27) + 1
        blob = bytes((TYPE_DIGEST_DELTA,)) + struct.pack(
            ">IIII", 9, 1, huge, huge
        )
        with pytest.raises(FrameError, match="exceeds limit"):
            roundtrip(codec, blob)

    def test_truncated_mid_header(self):
        # Peer died after the tag and half the generation field.
        codec = FrameCodec(WIRE)
        blob = bytes((TYPE_DIGEST_DELTA,)) + b"\x00\x00"
        with pytest.raises(asyncio.IncompleteReadError):
            roundtrip(codec, blob)

    def test_truncated_mid_body(self):
        codec = FrameCodec(WIRE)
        complete = codec.encode_digest_delta(
            4, 2, self._digests(0, 2), self._digests(5, 2)
        )
        with pytest.raises(asyncio.IncompleteReadError):
            roundtrip(codec, complete[:-3])
