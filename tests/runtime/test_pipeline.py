"""The pipelined data path must be a pure latency optimization.

Three contracts pin it down:

* the chunked :class:`FirstRoundPlanner` produces the exact plan of the
  one-shot :func:`plan_first_round`, at every chunking;
* a pipelined migration emits byte-for-byte the wire traffic of the
  serial path — the scrubbed :class:`MigrationMetrics` dicts are equal;
* DIGEST_DELTA manifests engage only when the daemon can prove the
  source's base generation, and fall back to the full announce after a
  restart loses the in-memory delta history.
"""

import asyncio

import numpy as np
import pytest

from repro.core.fingerprint import Fingerprint
from repro.core.strategies import VECYCLE
from repro.core.transfer import Method
from repro.mem.pagestore import PageStore
from repro.runtime import (
    CheckpointDaemon,
    FirstRoundPlanner,
    MigrationSource,
    RetryPolicy,
    RuntimeConfig,
    SourceState,
    plan_first_round,
)

N = 1024
FAST = RuntimeConfig(
    io_timeout_s=5.0,
    connect_timeout_s=5.0,
    retry=RetryPolicy(max_attempts=4, base_backoff_s=0.01, max_backoff_s=0.05),
    time_scale=0.0,
)
FAST_PIPELINED = RuntimeConfig(
    io_timeout_s=5.0,
    connect_timeout_s=5.0,
    retry=RetryPolicy(max_attempts=4, base_backoff_s=0.01, max_backoff_s=0.05),
    time_scale=0.0,
    pipelined=True,
)


def build_vm(seed: int = 11, updates: int = 100):
    rng = np.random.default_rng(seed)
    checkpoint = rng.integers(1, 2**62, size=N, dtype=np.uint64)
    dup = rng.choice(N, size=N // 10, replace=False)
    checkpoint[dup] = checkpoint[rng.integers(0, N, size=N // 10)]
    current = checkpoint.copy()
    dirty = np.sort(rng.choice(N, size=updates, replace=False))
    current[dirty] = rng.integers(2**62, 2**63, size=updates, dtype=np.uint64)
    return checkpoint, current, dirty


def scrub(metrics) -> dict:
    """Metrics dict minus the timing fields (which legitimately differ)."""
    data = metrics.to_dict()
    data.pop("wall_time_s", None)
    data.pop("modelled_time_s", None)
    data.pop("sink", None)
    for round_data in data.get("rounds", []):
        round_data.pop("duration_s", None)
    return data


async def migrate_once(
    checkpoint,
    current,
    dirty,
    config=FAST,
    daemon_setup=None,
    known_digests=None,
    known_generation=None,
):
    pagestore = PageStore()
    async with CheckpointDaemon(pagestore=pagestore) as daemon:
        if checkpoint is not None:
            daemon.install_checkpoint("vm", Fingerprint(hashes=checkpoint))
        if daemon_setup is not None:
            daemon_setup(daemon)
        source = MigrationSource(
            SourceState(
                vm_id="vm",
                hashes=current,
                pagestore=pagestore,
                known_remote_digests=known_digests,
                known_remote_generation=known_generation,
            ),
            VECYCLE,
            config=config,
        )
        metrics = await source.migrate(daemon.host, daemon.port)
        return metrics, daemon


class TestPlannerEquivalence:
    """Chunked planning must reproduce the one-shot plan exactly."""

    @pytest.mark.parametrize("method", list(Method))
    @pytest.mark.parametrize("chunk", [1, 7, 64, N, N + 5])
    def test_any_chunking_matches_one_shot(self, method, chunk):
        checkpoint, current, dirty = build_vm(seed=3)
        store = PageStore()
        announced = None
        if method.uses_hashes:
            announced = frozenset(
                store.digest_for(int(cid)) for cid in np.unique(checkpoint)
            )
        dirty_arg = dirty if method.uses_dirty_tracking else None

        reference = plan_first_round(
            method,
            current,
            announced=announced,
            digest_of=store.digest_for if method.uses_hashes else None,
            dirty_slots=dirty_arg,
        )

        planner = FirstRoundPlanner(
            method, current, announced=announced, dirty_slots=dirty_arg
        )
        incremental_sends = []
        start = 0
        while start < planner.num_slots:
            stop = min(start + chunk, planner.num_slots)
            digests = None
            if method.uses_hashes:
                digests = {
                    int(cid): store.digest_for(int(cid))
                    for cid in np.unique(planner.chunk_ids(start, stop))
                }
            incremental_sends.extend(planner.plan_chunk(stop, digests))
            start = stop
        plan = planner.finish()

        np.testing.assert_array_equal(plan.kinds, reference.kinds)
        np.testing.assert_array_equal(plan.refs, reference.refs)
        assert plan.checksummed_pages == reference.checksummed_pages
        assert incremental_sends == reference.sends()

    def test_incomplete_plan_refuses_to_finish(self):
        _, current, _ = build_vm()
        planner = FirstRoundPlanner(Method.FULL, current)
        planner.plan_chunk(10)
        with pytest.raises(ValueError, match="planned only"):
            planner.finish()

    def test_chunks_must_be_ascending(self):
        _, current, _ = build_vm()
        planner = FirstRoundPlanner(Method.FULL, current)
        planner.plan_chunk(100)
        with pytest.raises(ValueError, match="out of range"):
            planner.plan_chunk(50)


class TestPipelinedParity:
    """Same wire traffic, same decisions — only the timing may differ."""

    def test_metrics_identical_to_serial_path(self):
        checkpoint, current, dirty = build_vm()
        serial, serial_daemon = asyncio.run(
            migrate_once(checkpoint, current, dirty, config=FAST)
        )
        pipelined, pipe_daemon = asyncio.run(
            migrate_once(checkpoint, current, dirty, config=FAST_PIPELINED)
        )
        assert pipelined.outcome == "completed"
        assert scrub(pipelined) == scrub(serial)
        # Both daemons adopted the same checkpoint content.
        assert (
            pipe_daemon.checkpoints["vm"].slot_digests
            == serial_daemon.checkpoints["vm"].slot_digests
        )

    def test_pipelined_first_visit_with_empty_announce(self):
        # No hosted checkpoint: the degraded §3.2 mode (everything in
        # full) must survive the staged path too.
        _, current, dirty = build_vm()
        serial, _ = asyncio.run(migrate_once(None, current, dirty, config=FAST))
        pipelined, _ = asyncio.run(
            migrate_once(None, current, dirty, config=FAST_PIPELINED)
        )
        assert pipelined.outcome == "completed"
        assert scrub(pipelined) == scrub(serial)


class TestPipelinedFaults:
    def test_disconnect_mid_transfer_retries_cleanly(self):
        # The retry tears down the stage tasks mid-flight; the resumed
        # attempt must still converge to a completed, verified image.
        checkpoint, current, dirty = build_vm(updates=400)
        metrics, daemon = asyncio.run(
            migrate_once(
                checkpoint, current, dirty,
                config=FAST_PIPELINED,
                daemon_setup=lambda d: d.inject_disconnect(after_messages=100),
            )
        )
        assert metrics.outcome == "completed"
        assert metrics.retries == 1
        store = PageStore()
        assert daemon.checkpoints["vm"].slot_digests == [
            store.digest_for(int(c)) for c in current
        ]


class TestDeltaManifest:
    def _churn(self, hashes, seed, slots=40):
        rng = np.random.default_rng(seed)
        changed = hashes.copy()
        idx = rng.choice(changed.size, size=slots, replace=False)
        changed[idx] = rng.integers(2**62, 2**63, size=slots, dtype=np.uint64)
        return changed

    def test_stale_generation_gets_delta_not_full_announce(self):
        checkpoint, _, _ = build_vm(seed=21, updates=0)
        moved = self._churn(checkpoint, seed=22)

        async def scenario():
            pagestore = PageStore()
            async with CheckpointDaemon(pagestore=pagestore) as daemon:
                first = daemon.install_checkpoint(
                    "vm", Fingerprint(hashes=checkpoint)
                )
                known = daemon.checkpoint_digests("vm")
                # The checkpoint moves on (another migration landed) —
                # the source's knowledge is now one generation stale.
                daemon.install_checkpoint("vm", Fingerprint(hashes=moved))
                source = MigrationSource(
                    SourceState(
                        vm_id="vm",
                        hashes=moved,
                        pagestore=pagestore,
                        known_remote_digests=known,
                        known_remote_generation=first.generation,
                    ),
                    VECYCLE,
                    config=FAST,
                )
                metrics = await source.migrate(daemon.host, daemon.port)
                return metrics, daemon

        metrics, daemon = asyncio.run(scenario())
        control, _ = asyncio.run(migrate_once(moved, moved, None, config=FAST))

        assert metrics.outcome == "completed"
        assert daemon.telemetry.counter("daemon.announce.delta").value == 1
        assert daemon.telemetry.counter("daemon.announce.full").value == 0
        # O(churn) manifest: far smaller than the full announce the
        # control migration paid for the same checkpoint.
        assert control.announce_bytes > 0
        assert metrics.announce_bytes < 0.5 * control.announce_bytes
        # And the stale knowledge plus delta reconstructed the true
        # announced set: pages already hosted were not re-sent.
        assert metrics.payload_bytes == control.payload_bytes

    def test_current_generation_gets_verified_skip(self):
        checkpoint, _, _ = build_vm(seed=31, updates=0)

        async def scenario():
            pagestore = PageStore()
            async with CheckpointDaemon(pagestore=pagestore) as daemon:
                hosted = daemon.install_checkpoint(
                    "vm", Fingerprint(hashes=checkpoint)
                )
                source = MigrationSource(
                    SourceState(
                        vm_id="vm",
                        hashes=checkpoint,
                        pagestore=pagestore,
                        known_remote_digests=daemon.checkpoint_digests("vm"),
                        known_remote_generation=hosted.generation,
                    ),
                    VECYCLE,
                    config=FAST,
                )
                metrics = await source.migrate(daemon.host, daemon.port)
                return metrics, daemon

        metrics, daemon = asyncio.run(scenario())
        assert metrics.outcome == "completed"
        assert metrics.announce_bytes == 0
        assert daemon.telemetry.counter("daemon.announce.skipped").value == 1

    def test_restart_loses_history_and_falls_back_to_full(self, tmp_path):
        checkpoint, _, _ = build_vm(seed=41, updates=0)
        moved = self._churn(checkpoint, seed=42)
        state_dir = tmp_path / "daemon-state"

        async def scenario():
            pagestore = PageStore()
            async with CheckpointDaemon(
                pagestore=pagestore, state_dir=state_dir
            ) as daemon:
                first = daemon.install_checkpoint(
                    "vm", Fingerprint(hashes=checkpoint)
                )
                known = daemon.checkpoint_digests("vm")
                daemon.install_checkpoint("vm", Fingerprint(hashes=moved))
                base_generation = first.generation
            # Restart: generations recover from the durable manifests,
            # the in-memory delta history does not.
            async with CheckpointDaemon(
                pagestore=pagestore, state_dir=state_dir
            ) as daemon:
                assert daemon.checkpoints["vm"].generation > base_generation
                source = MigrationSource(
                    SourceState(
                        vm_id="vm",
                        hashes=moved,
                        pagestore=pagestore,
                        known_remote_digests=known,
                        known_remote_generation=base_generation,
                    ),
                    VECYCLE,
                    config=FAST,
                )
                metrics = await source.migrate(daemon.host, daemon.port)
                return metrics, daemon

        metrics, daemon = asyncio.run(scenario())
        assert metrics.outcome == "completed"
        # The unprovable base generation produced the authoritative full
        # manifest, not a delta and not a trusted skip.
        assert daemon.telemetry.counter("daemon.announce.full").value == 1
        assert daemon.telemetry.counter("daemon.announce.delta").value == 0
        control, _ = asyncio.run(migrate_once(moved, moved, None, config=FAST))
        assert metrics.announce_bytes == control.announce_bytes
