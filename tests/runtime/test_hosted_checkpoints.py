"""Daemon checkpoint inventory (ISSUE S1): live ∪ durable, last-used."""

import asyncio

import numpy as np

from repro.core.fingerprint import Fingerprint
from repro.core.strategies import VECYCLE_DEDUP
from repro.mem.pagestore import PageStore
from repro.runtime import (
    CheckpointDaemon,
    MigrationSource,
    RetryPolicy,
    RuntimeConfig,
    SourceState,
)
from repro.storage.repository import CheckpointManifest, CheckpointRepository

N = 64
FAST = RuntimeConfig(
    io_timeout_s=5.0,
    connect_timeout_s=5.0,
    retry=RetryPolicy(max_attempts=3, base_backoff_s=0.01, max_backoff_s=0.05),
    time_scale=0.0,
)


def fingerprint(seed=3, distinct=32):
    rng = np.random.default_rng(seed)
    return Fingerprint(
        hashes=rng.integers(1, distinct + 1, size=N, dtype=np.uint64),
        timestamp=42.0,
    )


def test_live_only_checkpoint_is_resident():
    daemon = CheckpointDaemon()
    fp = fingerprint()
    daemon.install_checkpoint("vm-live", fp)
    infos = daemon.hosted_checkpoints()
    assert [info.vm_id for info in infos] == ["vm-live"]
    info = infos[0]
    assert info.resident
    assert info.pages == N
    assert info.unique_pages == len(np.unique(fp.hashes))
    # No repository: stored size is estimated from distinct contents.
    assert info.stored_bytes == info.unique_pages * daemon.pagestore.page_size
    assert info.last_used == info.timestamp


def test_durable_only_checkpoint_is_listed_nonresident(tmp_path):
    daemon = CheckpointDaemon(state_dir=tmp_path)
    daemon.install_checkpoint("vm-live", fingerprint(seed=1))
    # A second repository handle commits a checkpoint the daemon never
    # sees through its live map — e.g. left behind by a prior
    # incarnation or a sibling handle.
    other = CheckpointRepository(tmp_path)
    store = PageStore()
    digests = []
    for content_id in (100, 101, 102):
        page = store.page_bytes(content_id)
        digest = store.digest_for(content_id)
        other.put_page(digest, page)
        digests.append(digest)
    other.commit_checkpoint(
        CheckpointManifest(
            vm_id="vm-cold", slot_digests=digests * 2, timestamp=7.0
        )
    )
    infos = {info.vm_id: info for info in daemon.hosted_checkpoints()}
    assert set(infos) == {"vm-cold", "vm-live"}
    cold = infos["vm-cold"]
    assert not cold.resident
    assert cold.pages == 6
    assert cold.unique_pages == 3
    assert cold.stored_bytes == 3 * store.page_size
    assert cold.timestamp == 7.0
    live = infos["vm-live"]
    assert live.resident
    # Resident + durable: stored size comes from the real segments.
    assert live.stored_bytes == live.unique_pages * store.page_size


def test_last_used_advances_when_checkpoint_is_recycled():
    async def main():
        pagestore = PageStore()
        async with CheckpointDaemon(pagestore=pagestore) as daemon:
            fp = fingerprint()
            daemon.install_checkpoint("vm", fp)
            before = daemon.hosted_checkpoints()[0]
            assert before.last_used == fp.timestamp
            source = MigrationSource(
                SourceState("vm", fp.hashes, pagestore),
                VECYCLE_DEDUP,
                config=FAST,
            )
            metrics = await source.migrate(daemon.host, daemon.port)
            assert metrics.outcome == "completed"
            after = daemon.hosted_checkpoints()[0]
            assert after.last_used > before.last_used

    asyncio.run(main())


def test_inventory_report_carries_capacity_and_sketches():
    daemon = CheckpointDaemon(name="inv-host", max_concurrent_migrations=5)
    daemon.install_checkpoint("vm", fingerprint())
    report = daemon.inventory_report(sketch_k=8)
    assert report["host"] == "inv-host"
    assert report["active_sessions"] == 0
    assert report["max_concurrent_migrations"] == 5
    assert report["sketch_k"] == 8
    (entry,) = report["checkpoints"]
    assert entry["vm_id"] == "vm"
    assert entry["pages"] == N
    assert entry["resident"] is True
    assert 0 < len(entry["sketch"]) <= 8
    assert entry["sketch"] == sorted(entry["sketch"])
