"""Unit tests for the source-side write coalescing (_BatchWriter)."""

import asyncio

from repro.runtime.source import _BatchWriter


class FakeStream:
    def __init__(self):
        self.sends = []

    async def send(self, data: bytes) -> None:
        self.sends.append(bytes(data))


def run(coro):
    return asyncio.run(coro)


class TestBatchWriter:
    def test_buffers_below_limit(self):
        stream = FakeStream()
        writer = _BatchWriter(stream, limit=100)

        async def scenario():
            await writer.add(b"a" * 30)
            await writer.add(b"b" * 30)

        run(scenario())
        assert stream.sends == []
        assert writer.pending_bytes == 60

    def test_flushes_at_limit(self):
        stream = FakeStream()
        writer = _BatchWriter(stream, limit=50)

        async def scenario():
            await writer.add(b"a" * 30)
            await writer.add(b"b" * 30)  # 60 >= 50 → flush

        run(scenario())
        assert stream.sends == [b"a" * 30 + b"b" * 30]
        assert writer.pending_bytes == 0
        assert writer.flushes == 1

    def test_explicit_flush_drains(self):
        stream = FakeStream()
        writer = _BatchWriter(stream, limit=1000)

        async def scenario():
            await writer.add(b"abc")
            await writer.flush()

        run(scenario())
        assert stream.sends == [b"abc"]

    def test_flush_when_empty_is_noop(self):
        stream = FakeStream()
        writer = _BatchWriter(stream, limit=10)
        run(writer.flush())
        assert stream.sends == []
        assert writer.flushes == 0

    def test_concatenation_preserves_frame_order(self):
        stream = FakeStream()
        writer = _BatchWriter(stream, limit=8)

        async def scenario():
            for frame in (b"11", b"22", b"33", b"44", b"55"):
                await writer.add(frame)
            await writer.flush()

        run(scenario())
        assert b"".join(stream.sends) == b"1122334455"

    def test_limit_floor_is_one(self):
        stream = FakeStream()
        writer = _BatchWriter(stream, limit=0)

        async def scenario():
            await writer.add(b"x")

        run(scenario())
        # Degenerate limit still sends every frame rather than dividing by zero.
        assert stream.sends == [b"x"]
