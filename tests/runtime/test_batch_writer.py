"""Unit tests for the source-side write coalescing (_BatchWriter)."""

import asyncio

from repro.runtime.source import _BatchWriter


class FakeStream:
    def __init__(self):
        self.sends = []

    async def send(self, data: bytes) -> None:
        self.sends.append(bytes(data))


def run(coro):
    return asyncio.run(coro)


class TestBatchWriter:
    def test_buffers_below_limit(self):
        stream = FakeStream()
        writer = _BatchWriter(stream, limit=100)

        async def scenario():
            await writer.add(b"a" * 30)
            await writer.add(b"b" * 30)

        run(scenario())
        assert stream.sends == []
        assert writer.pending_bytes == 60

    def test_flushes_at_limit(self):
        stream = FakeStream()
        writer = _BatchWriter(stream, limit=50)

        async def scenario():
            await writer.add(b"a" * 30)
            await writer.add(b"b" * 30)  # 60 >= 50 → flush

        run(scenario())
        assert stream.sends == [b"a" * 30 + b"b" * 30]
        assert writer.pending_bytes == 0
        assert writer.flushes == 1

    def test_explicit_flush_drains(self):
        stream = FakeStream()
        writer = _BatchWriter(stream, limit=1000)

        async def scenario():
            await writer.add(b"abc")
            await writer.flush()

        run(scenario())
        assert stream.sends == [b"abc"]

    def test_flush_when_empty_is_noop(self):
        stream = FakeStream()
        writer = _BatchWriter(stream, limit=10)
        run(writer.flush())
        assert stream.sends == []
        assert writer.flushes == 0

    def test_concatenation_preserves_frame_order(self):
        stream = FakeStream()
        writer = _BatchWriter(stream, limit=8)

        async def scenario():
            for frame in (b"11", b"22", b"33", b"44", b"55"):
                await writer.add(frame)
            await writer.flush()

        run(scenario())
        assert b"".join(stream.sends) == b"1122334455"

    def test_limit_floor_is_one(self):
        stream = FakeStream()
        writer = _BatchWriter(stream, limit=0)

        async def scenario():
            await writer.add(b"x")

        run(scenario())
        # Degenerate limit still sends every frame rather than dividing by zero.
        assert stream.sends == [b"x"]


class DroppingStream:
    """Stream whose first ``fail_sends`` sends die mid-flush."""

    def __init__(self, fail_sends=1):
        self.sends = []
        self._failures_left = fail_sends

    async def send(self, data: bytes) -> None:
        if self._failures_left > 0:
            self._failures_left -= 1
            raise ConnectionResetError("peer vanished mid-flush")
        self.sends.append(bytes(data))


class TestMidFlushDisconnect:
    def test_failed_flush_keeps_frames_queued(self):
        stream = DroppingStream(fail_sends=1)
        writer = _BatchWriter(stream, limit=1000)

        async def scenario():
            await writer.add(b"frame-1")
            await writer.add(b"frame-2")
            try:
                await writer.flush()
            except ConnectionResetError:
                pass
            # Nothing reached the wire, nothing was dropped: the batch is
            # still pending and the flush was not counted as delivered.
            assert stream.sends == []
            assert writer.pending_bytes == len(b"frame-1frame-2")
            assert writer.flushes == 0
            # The retry after reconnect delivers the frames exactly once.
            await writer.flush()

        run(scenario())
        assert stream.sends == [b"frame-1frame-2"]
        assert writer.flushes == 1

    def test_disconnect_during_limit_triggered_flush(self):
        stream = DroppingStream(fail_sends=1)
        writer = _BatchWriter(stream, limit=8)

        async def scenario():
            await writer.add(b"1111")
            try:
                await writer.add(b"2222")  # hits the limit, flush dies
            except ConnectionResetError:
                pass
            assert writer.pending_bytes == 8
            await writer.add(b"3333")  # retries the whole batch

        run(scenario())
        assert stream.sends == [b"111122223333"]
        assert writer.flushes == 1
