"""Tests for the traffic-shaped stream layer."""

import asyncio
import time

import pytest

from repro.net.link import LOOPBACK, Link, WAN_CLOUDNET
from repro.runtime.shaping import ShapedStream, open_shaped_connection

MIB = 2**20


async def echo_server():
    """A server that discards everything; returns (server, host, port)."""

    async def handle(reader, writer):
        try:
            while await reader.read(64 * 1024):
                pass
        finally:
            writer.close()

    server = await asyncio.start_server(handle, "127.0.0.1", 0)
    host, port = server.sockets[0].getsockname()[:2]
    return server, host, port


def run(coro):
    return asyncio.run(coro)


class TestAccounting:
    def test_counts_tx_bytes_and_modelled_time(self):
        async def main():
            server, host, port = await echo_server()
            async with server:
                stream = await open_shaped_connection(
                    host, port, link=WAN_CLOUDNET, time_scale=0.0
                )
                payload = bytes(MIB)
                await stream.send(payload)
                await stream.send(payload)
                await stream.close()
                return stream

        stream = run(main())
        assert stream.tx_bytes == 2 * MIB
        # Connection setup pays one RTT; each MiB pays serialization.
        expected = WAN_CLOUDNET.rtt_s + WAN_CLOUDNET.serialization_delay(2 * MIB)
        assert stream.modelled_tx_s == pytest.approx(expected)

    def test_unshaped_stream_accounts_bytes_but_no_time(self):
        async def main():
            server, host, port = await echo_server()
            async with server:
                stream = await open_shaped_connection(host, port, link=None)
                await stream.send(b"x" * 1000)
                await stream.close()
                return stream

        stream = run(main())
        assert stream.tx_bytes == 1000
        assert stream.modelled_tx_s == 0.0

    def test_time_scale_zero_never_sleeps(self):
        async def main():
            server, host, port = await echo_server()
            async with server:
                stream = await open_shaped_connection(
                    host, port, link=WAN_CLOUDNET, time_scale=0.0
                )
                started = time.monotonic()
                # 20 MiB would take ~3.4 s at the WAN's ~5.8 MiB/s.
                for _ in range(20):
                    await stream.send(bytes(MIB))
                elapsed = time.monotonic() - started
                await stream.close()
                return stream, elapsed

        stream, elapsed = run(main())
        assert stream.modelled_tx_s > 3.0
        assert elapsed < 1.0

    def test_negative_time_scale_rejected(self):
        # time_scale is validated before the stream pair is touched.
        with pytest.raises(ValueError, match="time_scale"):
            ShapedStream(reader=None, writer=None, time_scale=-1.0)


class TestPacing:
    def test_scaled_pacing_approximates_modelled_time(self):
        # A tiny link: 1 MiB at 8 Mbit/s ≈ 1.05 s modelled; at
        # time_scale=0.1 the real run should take roughly 0.1 s.
        link = Link(name="tiny", bandwidth_bps=8e6, latency_s=0.0, efficiency=1.0)

        async def main():
            server, host, port = await echo_server()
            async with server:
                stream = await open_shaped_connection(
                    host, port, link=link, time_scale=0.1
                )
                started = time.monotonic()
                for _ in range(16):
                    await stream.send(bytes(64 * 1024))
                elapsed = time.monotonic() - started
                await stream.close()
                return stream, elapsed

        stream, elapsed = run(main())
        assert stream.modelled_tx_s == pytest.approx(MIB / 1e6, rel=0.01)
        assert 0.05 < elapsed < 0.6

    def test_loopback_is_effectively_unshaped(self):
        async def main():
            server, host, port = await echo_server()
            async with server:
                stream = await open_shaped_connection(
                    host, port, link=LOOPBACK, time_scale=1.0
                )
                started = time.monotonic()
                for _ in range(8):
                    await stream.send(bytes(MIB))
                elapsed = time.monotonic() - started
                await stream.close()
                return elapsed

        assert run(main()) < 1.0


class TestRecvTimeout:
    def test_silent_peer_times_out(self):
        async def main():
            server, host, port = await echo_server()
            async with server:
                stream = await open_shaped_connection(host, port)
                recv = stream.recv_with_timeout(0.1)
                with pytest.raises(asyncio.TimeoutError):
                    await recv(1)
                await stream.close()

        run(main())

    def test_recv_counts_rx_bytes(self):
        async def main():
            async def handle(reader, writer):
                writer.write(b"abcdef")
                await writer.drain()
                writer.close()

            server = await asyncio.start_server(handle, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            async with server:
                stream = await open_shaped_connection(host, port)
                data = await stream.recv(6)
                await stream.close()
                return data, stream.rx_bytes

        data, rx = run(main())
        assert data == b"abcdef"
        assert rx == 6
