"""Daemon durability: checkpoints and sessions survive a restart.

The acceptance scenario from the ISSUE: a daemon given a ``state_dir``
persists every committed checkpoint; killing it between a checkpoint
write and the manifest rename loses at most the in-flight checkpoint;
restart recovers prior checkpoints bit-identically; a deliberately
corrupted segment is quarantined, not fatal; and a source reconnecting
with its session token after the restart still gets its RESULT.
"""

import asyncio

import numpy as np
import pytest

from repro.core.fingerprint import Fingerprint
from repro.core.strategies import QEMU, VECYCLE
from repro.mem.pagestore import PageStore
from repro.runtime import (
    CheckpointDaemon,
    MigrationSource,
    RetryPolicy,
    RuntimeConfig,
    SourceState,
)
from repro.storage.repository import FAULT_MANIFEST_WRITTEN, CheckpointRepository

N = 512
FAST = RuntimeConfig(
    io_timeout_s=5.0,
    connect_timeout_s=5.0,
    retry=RetryPolicy(max_attempts=3, base_backoff_s=0.01, max_backoff_s=0.05),
    time_scale=0.0,
)


class KillNine(BaseException):
    """Simulated hard kill of the daemon process."""


def build_vm(seed=3, updates=60):
    rng = np.random.default_rng(seed)
    checkpoint = rng.integers(1, 2**62, size=N, dtype=np.uint64)
    current = checkpoint.copy()
    dirty = np.sort(rng.choice(N, size=updates, replace=False))
    current[dirty] = rng.integers(2**62, 2**63, size=updates, dtype=np.uint64)
    return checkpoint, current, dirty


async def migrate(daemon, current, pagestore, strategy=QEMU, session_id=None):
    source = MigrationSource(
        SourceState(vm_id="vm", hashes=current, pagestore=pagestore),
        strategy,
        config=FAST,
    )
    if session_id is not None:
        source.session_id = session_id
    metrics = await source.migrate(daemon.host, daemon.port)
    return metrics, source


def expected_digests(current):
    store = PageStore()
    return [store.digest_for(int(c)) for c in current]


class TestRestartRecovery:
    def test_checkpoint_survives_restart_bit_identically(self, tmp_path):
        _, current, _ = build_vm()

        async def first_life():
            async with CheckpointDaemon(state_dir=tmp_path) as daemon:
                metrics, _ = await migrate(daemon, current, PageStore())
                assert metrics.outcome == "completed"

        asyncio.run(first_life())

        reborn = CheckpointDaemon(state_dir=tmp_path)
        assert reborn.checkpoints["vm"].slot_digests == expected_digests(current)
        # Page bytes recovered bit-identically from the segments.
        pagestore = PageStore()
        for content_id in current[:32]:
            digest = pagestore.digest_for(int(content_id))
            assert reborn.store.get(digest) == pagestore.page_bytes(int(content_id))

    def test_restarted_daemon_serves_recycled_migration(self, tmp_path):
        checkpoint, current, dirty = build_vm()

        async def first_life():
            pagestore = PageStore()
            async with CheckpointDaemon(
                pagestore=pagestore, state_dir=tmp_path
            ) as daemon:
                await migrate(daemon, checkpoint, pagestore)

        asyncio.run(first_life())

        async def second_life():
            pagestore = PageStore()
            async with CheckpointDaemon(
                pagestore=pagestore, state_dir=tmp_path
            ) as daemon:
                # The recovered checkpoint feeds the §3.2 announce: a
                # VeCycle migration after restart reuses recycled pages.
                metrics, _ = await migrate(
                    daemon, current, pagestore, strategy=VECYCLE
                )
                return metrics

        metrics = asyncio.run(second_life())
        assert metrics.outcome == "completed"
        assert metrics.pages_checksum_only > 0
        assert metrics.payload_bytes < N * 4096 / 5

    def test_completed_session_result_replays_after_restart(self, tmp_path):
        _, current, _ = build_vm()

        async def first_life():
            async with CheckpointDaemon(state_dir=tmp_path) as daemon:
                metrics, source = await migrate(
                    daemon, current, PageStore(), session_id="vm-sticky"
                )
                assert metrics.outcome == "completed"

        asyncio.run(first_life())

        async def reconnect_after_restart():
            async with CheckpointDaemon(state_dir=tmp_path) as daemon:
                assert "vm-sticky" in daemon._sessions
                metrics, _ = await migrate(
                    daemon, current, PageStore(), session_id="vm-sticky"
                )
                return metrics

        metrics = asyncio.run(reconnect_after_restart())
        # The replayed RESULT reports the original migration: completed
        # without re-sending any page.
        assert metrics.outcome == "completed"
        assert metrics.payload_bytes == 0


class TestCrashMidCommit:
    def test_kill_between_write_and_rename_loses_only_inflight(self, tmp_path):
        checkpoint, current, _ = build_vm()

        async def first_life():
            async with CheckpointDaemon(state_dir=tmp_path) as daemon:
                await migrate(daemon, checkpoint, PageStore())

        asyncio.run(first_life())

        repository = CheckpointRepository(tmp_path)
        doomed = CheckpointDaemon(repository=repository)

        def hook(point):
            if point == FAULT_MANIFEST_WRITTEN:
                raise KillNine(point)

        repository.fault_hook = hook
        with pytest.raises(KillNine):
            doomed.install_checkpoint(
                "vm", Fingerprint(hashes=current, timestamp=1.0)
            )

        reborn = CheckpointDaemon(state_dir=tmp_path)
        # The previously committed checkpoint is intact; the in-flight
        # replacement never committed.
        assert reborn.checkpoints["vm"].slot_digests == expected_digests(
            checkpoint
        )


class TestCorruptionQuarantine:
    def test_corrupt_segment_quarantined_daemon_still_starts(self, tmp_path):
        _, current, _ = build_vm()

        async def first_life():
            async with CheckpointDaemon(state_dir=tmp_path) as daemon:
                await migrate(daemon, current, PageStore())

        asyncio.run(first_life())

        repository = CheckpointRepository(tmp_path)
        digest = expected_digests(current)[0]
        victim = repository._segment_path(digest)
        victim.write_bytes(b"\xde\xad" + victim.read_bytes()[2:])

        reborn = CheckpointDaemon(state_dir=tmp_path)
        assert "vm" not in reborn.checkpoints  # quarantined, not fatal
        assert list(reborn.repository.quarantine_dir.iterdir())

        async def still_serves():
            async with reborn:
                metrics, _ = await migrate(reborn, current, PageStore())
                return metrics

        assert asyncio.run(still_serves()).outcome == "completed"
        fresh = CheckpointDaemon(state_dir=tmp_path)
        assert fresh.checkpoints["vm"].slot_digests == expected_digests(current)
