"""Runtime-vs-analytic cross-validation (the ISSUE acceptance check)."""

import pytest

from repro.core.protocol import ANNOUNCE_FRAME_OVERHEAD
from repro.core.strategies import available_strategies, get_strategy
from repro.runtime import idle_vm_scenario, run_cross_validation


@pytest.mark.parametrize("name", available_strategies())
def test_every_strategy_validates_within_two_percent(name):
    scenario = idle_vm_scenario(
        size_mib=8, updates_percent=2.0, strategy=get_strategy(name)
    )
    result = run_cross_validation(scenario)
    assert result.runtime.outcome == "completed"
    # Payload bytes agree EXACTLY: data frames reproduce the analytic
    # message layout byte for byte.
    assert result.payload_delta_bytes == 0
    assert result.runtime.messages == result.analytic.messages
    assert result.within(tolerance=0.02), result.report()


def test_announce_differs_by_exactly_the_frame_overhead():
    scenario = idle_vm_scenario(size_mib=8, strategy=get_strategy("vecycle"))
    result = run_cross_validation(scenario)
    assert result.announce_delta_bytes == ANNOUNCE_FRAME_OVERHEAD


def test_ping_pong_shortcut_charges_no_announce_on_either_path():
    scenario = idle_vm_scenario(size_mib=8, strategy=get_strategy("vecycle"))
    result = run_cross_validation(scenario, announce_known=True)
    assert result.runtime.announce_bytes == 0
    assert result.analytic.announce_bytes == 0
    assert result.within(tolerance=0.02), result.report()


def test_transfer_set_composition_is_reported_identically():
    scenario = idle_vm_scenario(size_mib=8, strategy=get_strategy("vecycle+dedup"))
    result = run_cross_validation(scenario)
    assert result.runtime.pages_full == result.transfer_set.full_pages
    assert result.runtime.pages_ref == result.transfer_set.ref_pages
    assert result.runtime.pages_checksum_only == result.transfer_set.checksum_only_pages
    assert result.runtime.pages_skipped == result.transfer_set.skipped_pages


def test_scenario_validates_inputs():
    with pytest.raises(ValueError, match="updates_percent"):
        idle_vm_scenario(updates_percent=150.0)
