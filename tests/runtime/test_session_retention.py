"""Regression tests for the daemon's session-retention soft cap.

The old pruning used ``popitem(last=False)``: strictly oldest-first,
which under ≥64 concurrent migrations evicted *in-progress* sessions
and silently broke the documented reconnect/resume guarantee.  The
fixed policy retires only completed sessions, and when every retained
session is live it grows past the soft cap with a warning instead.
"""

import logging

from repro.core.checksum import MD5
from repro.core.transfer import Method
from repro.obs.metrics import get_registry
from repro.runtime.daemon import (
    _MAX_RETAINED_SESSIONS,
    CheckpointDaemon,
    _SinkSession,
)


def make_session(daemon, session_id, completed):
    """Fabricate a retained session directly in the daemon's map."""
    session = _SinkSession(
        session_id=session_id,
        vm_id=f"vm-{session_id}",
        num_pages=4,
        method=Method.FULL,
        algorithm=MD5,
        store=daemon.store,
        preload=None,
    )
    session.completed = completed
    if completed:
        session.result = {"ok": True}
    daemon._sessions[session_id] = session
    return session


class TestSessionRetention:
    def test_completed_sessions_evicted_before_any_live_one(self):
        daemon = CheckpointDaemon()
        live = [
            make_session(daemon, f"live-{i}", completed=False)
            for i in range(_MAX_RETAINED_SESSIONS)
        ]
        # These completed ones push the map past the cap; they (and only
        # they) must be the victims even though every live session is
        # older insertion-order-wise.
        for i in range(8):
            make_session(daemon, f"done-{i}", completed=True)
        daemon._prune_sessions()
        assert len(daemon._sessions) == _MAX_RETAINED_SESSIONS
        for session in live:
            assert session.session_id in daemon._sessions

    def test_oldest_completed_evicted_first(self):
        daemon = CheckpointDaemon()
        for i in range(_MAX_RETAINED_SESSIONS + 2):
            make_session(daemon, f"done-{i}", completed=True)
        daemon._prune_sessions()
        assert "done-0" not in daemon._sessions
        assert "done-1" not in daemon._sessions
        assert f"done-{_MAX_RETAINED_SESSIONS + 1}" in daemon._sessions

    def test_all_live_grows_past_cap_with_warning(self):
        daemon = CheckpointDaemon()
        for i in range(_MAX_RETAINED_SESSIONS + 3):
            make_session(daemon, f"live-{i}", completed=False)

        records = []
        handler = logging.Handler()
        handler.emit = records.append
        logger = logging.getLogger("repro.runtime.daemon")
        logger.addHandler(handler)
        old_level = logger.level
        logger.setLevel(logging.WARNING)
        try:
            daemon._prune_sessions()
        finally:
            logger.removeHandler(handler)
            logger.setLevel(old_level)

        # Nobody was evicted: resume beats the soft cap.
        assert len(daemon._sessions) == _MAX_RETAINED_SESSIONS + 3
        assert any(
            record.levelno == logging.WARNING
            and "soft cap" in record.getMessage()
            for record in records
        )
        overflow = get_registry().gauge("daemon.sessions.live_overflow")
        assert overflow.value == 3

    def test_evicted_session_releases_content_store_refs(self):
        daemon = CheckpointDaemon()
        page = b"p" * 4096
        digest = MD5.digest(page)
        victim = make_session(daemon, "victim", completed=True)
        daemon.store.put(digest, page)
        for slot in range(4):
            victim._set_slot(slot, digest)
        assert daemon.store.refcount(digest) == 4
        for i in range(_MAX_RETAINED_SESSIONS):
            make_session(daemon, f"live-{i}", completed=False)
        daemon._prune_sessions()
        assert "victim" not in daemon._sessions
        # The retired session gave back every per-slot reference, so the
        # content store reclaimed the bytes (the leak this PR fixes).
        assert daemon.store.refcount(digest) == 0
        assert daemon.store.stored_bytes == 0
