"""End-to-end tests: real localhost migrations through the runtime."""

import asyncio

import numpy as np
import pytest

from repro.core.fingerprint import Fingerprint
from repro.core.strategies import (
    DEDUP,
    MIYAKODORI,
    QEMU,
    VECYCLE,
    VECYCLE_DEDUP,
)
from repro.mem.pagestore import PageStore
from repro.runtime import (
    CheckpointDaemon,
    MigrationError,
    MigrationSource,
    RetryPolicy,
    RuntimeConfig,
    SourceState,
)

N = 1024
FAST = RuntimeConfig(
    io_timeout_s=5.0,
    connect_timeout_s=5.0,
    retry=RetryPolicy(max_attempts=4, base_backoff_s=0.01, max_backoff_s=0.05),
    time_scale=0.0,
)


def build_vm(seed: int = 11, updates: int = 100):
    """(checkpoint hashes, current hashes, dirty slot indices)."""
    rng = np.random.default_rng(seed)
    checkpoint = rng.integers(1, 2**62, size=N, dtype=np.uint64)
    dup = rng.choice(N, size=N // 10, replace=False)
    checkpoint[dup] = checkpoint[rng.integers(0, N, size=N // 10)]
    current = checkpoint.copy()
    dirty = np.sort(rng.choice(N, size=updates, replace=False))
    current[dirty] = rng.integers(2**62, 2**63, size=updates, dtype=np.uint64)
    return checkpoint, current, dirty


async def migrate_once(
    strategy,
    checkpoint,
    current,
    dirty,
    daemon_setup=None,
    config=FAST,
    known_remote=False,
    dirty_feed=None,
    pagestore=None,
):
    pagestore = pagestore or PageStore()
    async with CheckpointDaemon(pagestore=pagestore) as daemon:
        if checkpoint is not None:
            daemon.install_checkpoint("vm", Fingerprint(hashes=checkpoint))
        if daemon_setup is not None:
            daemon_setup(daemon)
        source = MigrationSource(
            SourceState(
                vm_id="vm",
                hashes=current,
                pagestore=pagestore,
                dirty_slots=dirty if strategy.method.uses_dirty_tracking else None,
                known_remote_digests=(
                    daemon.checkpoint_digests("vm") if known_remote else None
                ),
            ),
            strategy,
            config=config,
        )
        metrics = await source.migrate(daemon.host, daemon.port, dirty_feed=dirty_feed)
        return metrics, daemon


class TestFourModes:
    """The ISSUE acceptance matrix: full, dedup, dirty-tracking, VeCycle."""

    @pytest.mark.parametrize(
        "strategy", [QEMU, DEDUP, MIYAKODORI, VECYCLE], ids=lambda s: s.name
    )
    def test_mode_completes_and_image_verifies(self, strategy):
        checkpoint, current, dirty = build_vm()
        needs_ckpt = strategy.method.uses_checkpoint
        metrics, daemon = asyncio.run(
            migrate_once(strategy, checkpoint if needs_ckpt else None, current, dirty)
        )
        assert metrics.outcome == "completed"
        assert metrics.retries == 0
        # The daemon verified the final image digest and stored the new
        # checkpoint, so a hosted checkpoint with the migrated content
        # exists afterwards (the recycling the paper is about).
        store = PageStore()
        expected = [store.digest_for(int(c)) for c in current]
        assert daemon.checkpoints["vm"].slot_digests == expected

    def test_vecycle_moves_less_payload_than_full(self):
        checkpoint, current, dirty = build_vm()
        full, _ = asyncio.run(migrate_once(QEMU, None, current, dirty))
        vec, _ = asyncio.run(migrate_once(VECYCLE, checkpoint, current, dirty))
        assert vec.payload_bytes < full.payload_bytes / 5

    def test_dedup_emits_refs(self):
        checkpoint, current, dirty = build_vm()
        metrics, _ = asyncio.run(migrate_once(DEDUP, None, current, dirty))
        assert metrics.pages_ref > 0
        assert metrics.messages_by_type.get("ref", 0) == metrics.pages_ref


class TestPingPong:
    def test_known_hashes_skip_the_announce(self):
        checkpoint, current, dirty = build_vm()
        with_announce, _ = asyncio.run(
            migrate_once(VECYCLE, checkpoint, current, dirty)
        )
        shortcut, _ = asyncio.run(
            migrate_once(VECYCLE, checkpoint, current, dirty, known_remote=True)
        )
        assert with_announce.announce_bytes > 0
        assert shortcut.announce_bytes == 0
        # Same transfer decisions either way.
        assert shortcut.payload_bytes == with_announce.payload_bytes


class TestDirtyRounds:
    def test_dirty_feed_adds_rounds_and_result_verifies(self):
        checkpoint, current, dirty = build_vm()
        current = current.copy()
        rng = np.random.default_rng(5)

        def feed(round_no):
            if round_no > 3:
                return None
            slots = rng.choice(N, size=20, replace=False)
            current[slots] = rng.integers(
                2**63, 2**64 - 1, size=20, dtype=np.uint64
            )
            return slots

        metrics, daemon = asyncio.run(
            migrate_once(VECYCLE, checkpoint, current, dirty, dirty_feed=feed)
        )
        assert metrics.outcome == "completed"
        assert metrics.num_rounds == 3
        assert metrics.messages_by_type.get("plain", 0) > 0
        store = PageStore()
        assert daemon.checkpoints["vm"].slot_digests == [
            store.digest_for(int(c)) for c in current
        ]


class TestFaultInjection:
    def test_disconnect_mid_transfer_is_retried_and_resumed(self):
        checkpoint, current, dirty = build_vm(updates=400)
        metrics, _ = asyncio.run(
            migrate_once(
                VECYCLE, checkpoint, current, dirty,
                daemon_setup=lambda d: d.inject_disconnect(after_messages=100),
            )
        )
        assert metrics.outcome == "completed"
        assert metrics.retries == 1

    def test_repeated_disconnects_exhaust_retries_with_structured_error(self):
        checkpoint, current, dirty = build_vm(updates=400)
        with pytest.raises(MigrationError) as excinfo:
            asyncio.run(
                migrate_once(
                    VECYCLE, checkpoint, current, dirty,
                    daemon_setup=lambda d: d.inject_disconnect(
                        after_messages=10, times=100
                    ),
                )
            )
        err = excinfo.value
        assert err.code == "transport"
        assert err.metrics is not None
        assert err.metrics.outcome == "failed"
        assert err.metrics.retries == FAST.retry.max_attempts - 1

    def test_silent_server_times_out_instead_of_hanging(self):
        async def main():
            async def black_hole(reader, writer):
                await asyncio.sleep(3600)

            server = await asyncio.start_server(black_hole, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            async with server:
                _, current, _ = build_vm()
                source = MigrationSource(
                    SourceState("vm", current, PageStore()),
                    QEMU,
                    config=RuntimeConfig(
                        io_timeout_s=0.1,
                        retry=RetryPolicy(max_attempts=2, base_backoff_s=0.01),
                    ),
                )
                with pytest.raises(MigrationError) as excinfo:
                    await source.migrate(host, port)
                assert excinfo.value.code == "transport"

        asyncio.run(asyncio.wait_for(main(), timeout=30))

    def test_connection_refused_is_a_structured_failure(self):
        async def main():
            # Bind-then-close gives a port with nothing listening.
            server = await asyncio.start_server(
                lambda r, w: None, "127.0.0.1", 0
            )
            host, port = server.sockets[0].getsockname()[:2]
            server.close()
            await server.wait_closed()
            _, current, _ = build_vm()
            source = MigrationSource(
                SourceState("vm", current, PageStore()),
                QEMU,
                config=RuntimeConfig(
                    retry=RetryPolicy(max_attempts=2, base_backoff_s=0.01)
                ),
            )
            with pytest.raises(MigrationError) as excinfo:
                await source.migrate(host, port)
            assert excinfo.value.code == "transport"
            assert excinfo.value.metrics.retries == 1

        asyncio.run(main())


class TestConcurrentMigrations:
    def test_one_daemon_receives_two_vms_at_once(self):
        async def main():
            pagestore = PageStore()
            rng = np.random.default_rng(17)
            async with CheckpointDaemon(pagestore=pagestore) as daemon:
                sources = []
                for vm_id in ("vm-a", "vm-b"):
                    hashes = rng.integers(1, 2**62, size=N, dtype=np.uint64)
                    sources.append(
                        (
                            hashes,
                            MigrationSource(
                                SourceState(vm_id, hashes, pagestore),
                                QEMU,
                                config=FAST,
                            ),
                        )
                    )
                results = await asyncio.gather(
                    *(s.migrate(daemon.host, daemon.port) for _, s in sources)
                )
                for (hashes, _), metrics in zip(sources, results):
                    assert metrics.outcome == "completed"
                store = PageStore()
                for (hashes, source), _ in zip(sources, results):
                    assert daemon.checkpoints[
                        source.state.vm_id
                    ].slot_digests == [store.digest_for(int(c)) for c in hashes]

        asyncio.run(main())


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_backoff_s=0.1, backoff_factor=2.0, max_backoff_s=0.5)
        delays = [policy.backoff(i) for i in range(5)]
        assert delays[0] == pytest.approx(0.1)
        assert delays[1] == pytest.approx(0.2)
        assert delays[4] == 0.5  # capped

    def test_zero_attempts_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
