"""The runtime planner must agree with the analytic transfer set.

This equivalence is the hinge of the whole runtime-vs-model
cross-validation: :func:`plan_first_round` makes per-slot decisions and
:func:`compute_transfer_set` only counts, but for the same inputs the
counts must be identical for every method.
"""

import numpy as np
import pytest

from repro.core.fingerprint import Fingerprint
from repro.core.transfer import Method, compute_transfer_set
from repro.mem.pagestore import PageStore
from repro.runtime.planner import (
    KIND_CHECKSUM,
    KIND_FULL,
    KIND_PLAIN,
    KIND_REF,
    KIND_SKIP,
    plan_dirty_round,
    plan_first_round,
)

N = 512


@pytest.fixture
def scenario():
    rng = np.random.default_rng(99)
    checkpoint = rng.integers(1, 2**62, size=N, dtype=np.uint64)
    # Inject duplicates so dedup has work to do.
    dup = rng.choice(N, size=N // 8, replace=False)
    checkpoint[dup] = checkpoint[rng.integers(0, N, size=N // 8)]
    current = checkpoint.copy()
    dirty = np.sort(rng.choice(N, size=N // 5, replace=False))
    current[dirty] = rng.integers(2**62, 2**63, size=dirty.size, dtype=np.uint64)
    # Some dirtied slots duplicate other dirtied slots' new content.
    current[dirty[1::4]] = current[dirty[0]]
    return checkpoint, current, dirty


def announced_set(checkpoint: np.ndarray, store: PageStore):
    return frozenset(store.digest_for(int(cid)) for cid in np.unique(checkpoint))


@pytest.mark.parametrize("method", list(Method))
def test_planner_counts_match_analytic_transfer_set(method, scenario):
    checkpoint, current, dirty = scenario
    store = PageStore()
    plan = plan_first_round(
        method,
        current,
        announced=announced_set(checkpoint, store) if method.uses_hashes else None,
        digest_of=store.digest_for if method.uses_hashes else None,
        dirty_slots=dirty if method.uses_dirty_tracking else None,
    )
    analytic = compute_transfer_set(
        method,
        Fingerprint(hashes=current),
        checkpoint=Fingerprint(hashes=checkpoint) if method.uses_checkpoint else None,
        dirty_slots=dirty if method.uses_dirty_tracking else None,
    )
    assert plan.full_pages == analytic.full_pages
    assert plan.ref_pages == analytic.ref_pages
    assert plan.checksum_only_pages == analytic.checksum_only_pages
    assert plan.skipped_pages == analytic.skipped_pages
    assert plan.checksummed_pages == analytic.checksummed_pages
    assert (
        plan.full_pages + plan.ref_pages + plan.checksum_only_pages
        + plan.skipped_pages
    ) == N


def test_sends_are_slot_ordered_and_refs_point_backward(scenario):
    checkpoint, current, dirty = scenario
    store = PageStore()
    plan = plan_first_round(
        Method.HASHES_DEDUP,
        current,
        announced=announced_set(checkpoint, store),
        digest_of=store.digest_for,
    )
    sends = plan.sends()
    slots = [s.slot for s in sends]
    assert slots == sorted(slots)
    sent_so_far = set()
    for send in sends:
        if send.kind == KIND_REF:
            assert send.ref in sent_so_far, "dedup ref must target an earlier slot"
            assert current[send.ref] == send.content_id
        sent_so_far.add(send.slot)


def test_full_method_sends_every_page_plain():
    hashes = np.arange(1, 65, dtype=np.uint64)
    plan = plan_first_round(Method.FULL, hashes)
    assert plan.count(KIND_PLAIN) == 64
    assert plan.count(KIND_SKIP) == 0
    assert plan.checksummed_pages == 0


def test_hashes_with_empty_announce_degrades_to_full_messages():
    # First visit to a host: nothing announced, every page goes in full
    # (with its checksum, per the §3.2 message format).
    store = PageStore()
    hashes = np.arange(1, 33, dtype=np.uint64)
    plan = plan_first_round(
        Method.HASHES, hashes, announced=frozenset(), digest_of=store.digest_for
    )
    assert plan.count(KIND_FULL) == 32
    assert plan.count(KIND_CHECKSUM) == 0


def test_perfect_similarity_sends_only_checksums():
    store = PageStore()
    hashes = np.arange(1, 129, dtype=np.uint64)
    plan = plan_first_round(
        Method.HASHES,
        hashes,
        announced=announced_set(hashes, store),
        digest_of=store.digest_for,
    )
    assert plan.count(KIND_CHECKSUM) == 128
    assert plan.full_pages == 0


def test_missing_required_inputs_rejected():
    hashes = np.arange(1, 9, dtype=np.uint64)
    with pytest.raises(ValueError, match="announced checksum set"):
        plan_first_round(Method.HASHES, hashes)
    with pytest.raises(ValueError, match="dirty_slots"):
        plan_first_round(Method.DIRTY, hashes)


def test_plan_dirty_round_is_sorted_unique_plain():
    hashes = np.arange(100, 164, dtype=np.uint64)
    sends = plan_dirty_round(hashes, np.array([5, 3, 5, 60, 3]))
    assert [s.slot for s in sends] == [3, 5, 60]
    assert all(s.kind == KIND_PLAIN for s in sends)
    assert [s.content_id for s in sends] == [103, 105, 160]
