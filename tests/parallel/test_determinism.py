"""Byte-identity of parallel sweeps: workers must never change results.

The determinism contract of ``repro.parallel`` (ISSUE PR 3): every
figure pipeline produces byte-identical output at any worker count, and
repeated runs with the same seed are byte-identical too.  These tests
run the Figure 1 and Figure 8 pipelines at reduced scale across
``workers ∈ {1, 2, 4}`` and compare digests of every output array.
"""

import hashlib
import json

import numpy as np
import pytest

from repro.experiments import fig1_similarity, fig8_vdi
from repro.traces.presets import SERVER_A

FIG1_EPOCHS = 40
FIG8_EPOCHS = 160
WORKER_COUNTS = (1, 2, 4)


def _fig1_digest(results) -> str:
    h = hashlib.sha256()
    for name in sorted(results):
        decay = results[name]
        for arr in (
            decay.bin_hours,
            decay.minimum,
            decay.average,
            decay.maximum,
            decay.counts,
        ):
            h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def _fig8_digest(result) -> str:
    payload = [
        (
            rec.index,
            rec.fingerprint_hours,
            sorted((m.value, f) for m, f in rec.fractions.items()),
        )
        for rec in result.records
    ]
    return hashlib.sha256(json.dumps(payload).encode()).hexdigest()


@pytest.fixture(scope="module")
def fig1_by_workers():
    return {
        workers: fig1_similarity.run(
            machines=(SERVER_A,), num_epochs=FIG1_EPOCHS, workers=workers
        )
        for workers in WORKER_COUNTS
    }


@pytest.fixture(scope="module")
def fig8_by_workers():
    return {
        workers: fig8_vdi.run(num_epochs=FIG8_EPOCHS, workers=workers)
        for workers in WORKER_COUNTS
    }


class TestFig1Determinism:
    def test_identical_across_worker_counts(self, fig1_by_workers):
        digests = {w: _fig1_digest(r) for w, r in fig1_by_workers.items()}
        assert len(set(digests.values())) == 1, digests

    def test_repeated_run_is_identical(self, fig1_by_workers):
        again = fig1_similarity.run(
            machines=(SERVER_A,), num_epochs=FIG1_EPOCHS, workers=2
        )
        assert _fig1_digest(again) == _fig1_digest(fig1_by_workers[1])


class TestFig8Determinism:
    def test_identical_across_worker_counts(self, fig8_by_workers):
        digests = {w: _fig8_digest(r) for w, r in fig8_by_workers.items()}
        assert len(set(digests.values())) == 1, digests

    def test_migration_count_stable(self, fig8_by_workers):
        counts = {r.num_migrations for r in fig8_by_workers.values()}
        assert len(counts) == 1

    def test_repeated_run_is_identical(self, fig8_by_workers):
        again = fig8_vdi.run(num_epochs=FIG8_EPOCHS, workers=4)
        assert _fig8_digest(again) == _fig8_digest(fig8_by_workers[1])
