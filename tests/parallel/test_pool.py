"""Unit tests for repro.parallel.pool."""

import numpy as np
import pytest

import repro.parallel.pool as pool_module
from repro.parallel import (
    ENV_WORKERS,
    MIN_PARALLEL_SHARDS,
    pmap,
    resolve_workers,
    shard_seed,
)


def _square(x):
    return x * x


def _seeded(x, seed):
    return (x, seed)


def _first_draw(x, seed):
    return int(np.random.default_rng(seed).integers(1 << 30))


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(ENV_WORKERS, raising=False)
        assert resolve_workers() == 1

    def test_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "7")
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "5")
        assert resolve_workers() == 5

    def test_zero_means_all_cores(self):
        assert resolve_workers(0) >= 1

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "lots")
        with pytest.raises(ValueError):
            resolve_workers()


class TestShardSeed:
    def test_pure_function_of_inputs(self):
        assert shard_seed(7, 3) == shard_seed(7, 3)

    def test_index_changes_seed(self):
        seeds = {shard_seed(7, i) for i in range(100)}
        assert len(seeds) == 100

    def test_base_seed_changes_seed(self):
        assert shard_seed(7, 0) != shard_seed(8, 0)

    def test_fits_numpy_seed_range(self):
        for i in range(50):
            assert 0 <= shard_seed(123456789, i) < (1 << 31)


class TestPmap:
    def test_serial_matches_comprehension(self):
        items = list(range(17))
        assert pmap(_square, items, workers=1) == [x * x for x in items]

    def test_parallel_preserves_order(self):
        items = list(range(23))
        assert pmap(_square, items, workers=3) == [x * x for x in items]

    def test_parallel_matches_serial(self):
        items = list(range(11))
        assert pmap(_square, items, workers=4) == pmap(_square, items, workers=1)

    def test_empty_input(self):
        assert pmap(_square, [], workers=4) == []

    def test_single_shard_runs_inline(self):
        assert pmap(_square, [6], workers=4) == [36]

    def test_seed_derives_per_shard(self):
        result = pmap(_seeded, [10, 20, 30], workers=1, seed=99)
        assert result == [
            (10, shard_seed(99, 0)),
            (20, shard_seed(99, 1)),
            (30, shard_seed(99, 2)),
        ]

    def test_seeded_parallel_matches_serial(self):
        items = list(range(9))
        serial = pmap(_first_draw, items, workers=1, seed=5)
        parallel = pmap(_first_draw, items, workers=3, seed=5)
        assert serial == parallel

    def test_chunk_size_does_not_change_results(self):
        items = list(range(13))
        for chunk_size in (1, 2, 5, 13):
            assert (
                pmap(_square, items, workers=2, chunk_size=chunk_size)
                == [x * x for x in items]
            )

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            pmap(_square, [1, 2, 3, 4, 5], workers=2, chunk_size=0)


class _RecordingExecutor:
    """Stands in for ProcessPoolExecutor: records max_workers, runs inline."""

    created = []

    def __init__(self, max_workers, initializer=None):
        type(self).created.append(max_workers)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def submit(self, fn, *args):
        class _Done:
            def __init__(self, value):
                self._value = value

            def result(self):
                return self._value

        return _Done(fn(*args))


class TestWorkerAutoSizing:
    """Regression tests for the fig8 parallel slowdown (0.92× speedup):
    requesting more workers than cores must not oversubscribe, and tiny
    workloads must not pay process-pool startup at all."""

    @pytest.fixture(autouse=True)
    def _record_pool(self, monkeypatch):
        _RecordingExecutor.created = []
        monkeypatch.setattr(
            pool_module, "ProcessPoolExecutor", _RecordingExecutor
        )

    def test_workers_clamped_to_cpu_count(self, monkeypatch):
        monkeypatch.setattr(pool_module.os, "cpu_count", lambda: 2)
        items = list(range(40))
        assert pmap(_square, items, workers=8) == [x * x for x in items]
        assert _RecordingExecutor.created == [2]

    def test_env_workers_also_clamped(self, monkeypatch):
        monkeypatch.setattr(pool_module.os, "cpu_count", lambda: 3)
        monkeypatch.setenv(ENV_WORKERS, "16")
        items = list(range(40))
        assert pmap(_square, items) == [x * x for x in items]
        assert _RecordingExecutor.created == [3]

    def test_small_workloads_run_inline(self, monkeypatch):
        monkeypatch.setattr(pool_module.os, "cpu_count", lambda: 8)
        items = list(range(MIN_PARALLEL_SHARDS - 1))
        assert pmap(_square, items, workers=8) == [x * x for x in items]
        assert _RecordingExecutor.created == []

    def test_threshold_boundary_uses_the_pool(self, monkeypatch):
        monkeypatch.setattr(pool_module.os, "cpu_count", lambda: 8)
        items = list(range(MIN_PARALLEL_SHARDS))
        assert pmap(_square, items, workers=8) == [x * x for x in items]
        assert len(_RecordingExecutor.created) == 1

    def test_cpu_count_none_degrades_to_serial(self, monkeypatch):
        monkeypatch.setattr(pool_module.os, "cpu_count", lambda: None)
        items = list(range(20))
        assert pmap(_square, items, workers=4) == [x * x for x in items]
        assert _RecordingExecutor.created == []
