"""Unit tests for trace generation and persistence."""

import numpy as np
import pytest

from repro.traces.generate import Trace, generate_or_load, generate_trace
from repro.traces.workload import EPOCH_SECONDS

from tests.conftest import tiny_machine


class TestGenerateTrace:
    def test_epoch_count(self):
        trace = generate_trace(tiny_machine(), num_epochs=24)
        assert len(trace) == 24

    def test_timestamps_aligned_to_epochs(self):
        trace = generate_trace(tiny_machine(), num_epochs=12)
        stamps = [fp.timestamp for fp in trace.fingerprints]
        assert stamps[0] == EPOCH_SECONDS
        deltas = np.diff(stamps)
        assert (deltas % EPOCH_SECONDS == 0).all()

    def test_metadata_carried(self):
        spec = tiny_machine()
        trace = generate_trace(spec, num_epochs=4)
        assert trace.machine == spec.name
        assert trace.ram_bytes == spec.ram_bytes
        assert trace.num_pages == spec.params.num_pages

    def test_deterministic_given_seed(self):
        a = generate_trace(tiny_machine(), num_epochs=6)
        b = generate_trace(tiny_machine(), num_epochs=6)
        for fa, fb in zip(a.fingerprints, b.fingerprints):
            assert (fa.hashes == fb.hashes).all()

    def test_seed_override_changes_trace(self):
        a = generate_trace(tiny_machine(), num_epochs=6)
        b = generate_trace(tiny_machine(), num_epochs=6, seed=12345)
        assert any(
            (fa.hashes != fb.hashes).any()
            for fa, fb in zip(a.fingerprints, b.fingerprints)
        )

    def test_default_length_from_spec(self):
        spec = tiny_machine()
        trace = generate_trace(spec)
        assert len(trace) == spec.num_epochs

    def test_invalid_epochs(self):
        with pytest.raises(ValueError):
            generate_trace(tiny_machine(), num_epochs=0)

    def test_intermittent_machine_has_gaps(self):
        from repro.traces.workload import ActivityPattern

        spec = tiny_machine(
            activity=ActivityPattern.INTERMITTENT, presence_probability=0.5
        )
        trace = generate_trace(spec, num_epochs=96)
        assert len(trace) < 80  # well below the 96 possible

    def test_duration_hours(self):
        trace = generate_trace(tiny_machine(), num_epochs=48)
        assert trace.duration_hours == pytest.approx(23.5)


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        trace = generate_trace(tiny_machine(), num_epochs=6)
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.machine == trace.machine
        assert loaded.ram_bytes == trace.ram_bytes
        assert len(loaded) == len(trace)
        for a, b in zip(trace.fingerprints, loaded.fingerprints):
            assert a.timestamp == b.timestamp
            assert (a.hashes == b.hashes).all()

    def test_generate_or_load_caches(self, tmp_path):
        spec = tiny_machine()
        first = generate_or_load(spec, tmp_path, num_epochs=4)
        files = list(tmp_path.glob("*.npz"))
        assert len(files) == 1
        second = generate_or_load(spec, tmp_path, num_epochs=4)
        assert (
            first.fingerprints[0].hashes == second.fingerprints[0].hashes
        ).all()
        assert list(tmp_path.glob("*.npz")) == files
