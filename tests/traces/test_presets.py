"""Tests for the calibrated machine presets (Table 1 + §4.6)."""

import pytest

from repro.traces.presets import (
    ALL_MACHINES,
    CRAWLERS,
    DESKTOP,
    LAPTOPS,
    SERVERS,
    TABLE1_MACHINES,
    get_machine,
)
from repro.traces.workload import ActivityPattern

GIB = 2**30


class TestCatalog:
    def test_table1_systems_present(self):
        names = {spec.name for spec in TABLE1_MACHINES}
        assert {"Server A", "Server B", "Server C"} <= names
        assert {"Laptop A", "Laptop B", "Laptop C", "Laptop D"} <= names

    def test_table1_ram_sizes_match_paper(self):
        sizes = {spec.name: spec.ram_bytes for spec in TABLE1_MACHINES}
        assert sizes["Server A"] == 1 * GIB
        assert sizes["Server B"] == 4 * GIB
        assert sizes["Server C"] == 8 * GIB
        assert all(sizes[f"Laptop {x}"] == 2 * GIB for x in "ABCD")

    def test_table1_os_match_paper(self):
        for spec in TABLE1_MACHINES:
            expected = "OSX" if spec.name.startswith("Laptop") else "Linux"
            assert spec.os == expected

    def test_trace_ids_match_paper(self):
        assert get_machine("Server A").trace_id == "00065BEE5AA7"
        assert get_machine("Laptop A").trace_id == "001B6333F86A"

    def test_trace_durations(self):
        # 7 days for Memory Buddies machines, 4 for crawlers, 19 for the
        # desktop (§2.3, §4.6).
        assert all(spec.trace_days == 7 for spec in TABLE1_MACHINES)
        assert all(spec.trace_days == 4 for spec in CRAWLERS)
        assert DESKTOP.trace_days == 19

    def test_epoch_counts(self):
        # 7 * 48 = 336 possible fingerprints per week (§2.3).
        assert get_machine("Server A").num_epochs == 336
        assert DESKTOP.num_epochs == 912  # 19 days, as in §4.6.

    def test_activity_classes(self):
        assert all(
            spec.params.activity is ActivityPattern.DIURNAL for spec in SERVERS
        )
        assert all(
            spec.params.activity is ActivityPattern.INTERMITTENT for spec in LAPTOPS
        )
        assert all(
            spec.params.activity is ActivityPattern.CONSTANT for spec in CRAWLERS
        )
        assert DESKTOP.params.activity is ActivityPattern.OFFICE_HOURS

    def test_unique_seeds(self):
        seeds = [spec.seed for spec in ALL_MACHINES]
        assert len(seeds) == len(set(seeds))

    def test_get_machine_unknown(self):
        with pytest.raises(KeyError, match="Server B"):
            get_machine("Mainframe Z")

    def test_ram_gib_property(self):
        assert get_machine("Server C").ram_gib == 8.0
