"""Unit tests for the synthetic workload model."""

import numpy as np
import pytest

from repro.traces.workload import (
    ActivityPattern,
    EPOCH_SECONDS,
    MachineWorkload,
    WorkloadParams,
)


def params(**overrides):
    defaults = dict(
        num_pages=2048,
        stable_fraction=0.2,
        hot_fraction=0.3,
        base_update_fraction=0.2,
        duplicate_fraction=0.05,
        zero_fraction=0.02,
        relocate_fraction=0.01,
        recall_fraction=0.2,
        activity=ActivityPattern.CONSTANT,
        activity_floor=0.5,
    )
    defaults.update(overrides)
    return WorkloadParams(**defaults)


class TestParams:
    def test_fraction_bounds_enforced(self):
        with pytest.raises(ValueError):
            params(stable_fraction=1.5)
        with pytest.raises(ValueError):
            params(recall_fraction=-0.1)

    def test_num_pages_positive(self):
        with pytest.raises(ValueError):
            params(num_pages=0)

    def test_burst_multiplier_at_least_one(self):
        with pytest.raises(ValueError):
            params(burst_multiplier=0.5)

    def test_day_sigma_non_negative(self):
        with pytest.raises(ValueError):
            params(day_sigma=-1)

    def test_weekend_factor_bounds(self):
        with pytest.raises(ValueError):
            params(weekend_factor=2.0)


class TestActivityPatterns:
    def test_constant_always_busy(self):
        workload = MachineWorkload(params(activity=ActivityPattern.CONSTANT,
                                          activity_floor=0.8), seed=1)
        levels = [workload.activity_level(epoch) for epoch in range(96)]
        assert min(levels) >= 0.8

    def test_office_hours_quiet_at_night(self):
        workload = MachineWorkload(
            params(activity=ActivityPattern.OFFICE_HOURS, activity_floor=0.01),
            seed=1,
        )
        # Epoch 6 = 3am, epoch 24 = noon (weekday 0 = Monday in the
        # workload's own clock).
        night = workload.activity_level(6)
        noon = workload.activity_level(24)
        assert night == pytest.approx(0.01, abs=0.005)
        assert noon > 10 * night

    def test_office_hours_quiet_on_weekend(self):
        workload = MachineWorkload(
            params(activity=ActivityPattern.OFFICE_HOURS, activity_floor=0.01),
            seed=1,
        )
        # Day 5 (Saturday) at noon.
        weekend_noon = workload.activity_level(5 * 48 + 24)
        assert weekend_noon == pytest.approx(0.01, abs=0.005)

    def test_diurnal_day_night_contrast(self):
        workload = MachineWorkload(
            params(activity=ActivityPattern.DIURNAL, activity_floor=0.02,
                   day_sigma=0.0),
            seed=1,
        )
        night = np.mean([workload.activity_level(d * 48 + 4) for d in range(5)])
        afternoon = np.mean([workload.activity_level(d * 48 + 28) for d in range(5)])
        assert afternoon > 5 * night


class TestPresence:
    def test_servers_always_present(self):
        workload = MachineWorkload(params(activity=ActivityPattern.CONSTANT), seed=1)
        assert all(workload.present(epoch) for epoch in range(100))

    def test_laptops_sometimes_absent(self):
        workload = MachineWorkload(
            params(
                activity=ActivityPattern.INTERMITTENT, presence_probability=0.5
            ),
            seed=1,
        )
        present = sum(workload.present(epoch) for epoch in range(200))
        assert 60 < present < 140


class TestAdvanceEpoch:
    def test_epoch_counter_advances(self):
        workload = MachineWorkload(params(), seed=1)
        workload.advance_epoch()
        workload.advance_epoch()
        assert workload.epoch == 2
        assert workload.fingerprint().timestamp == 2 * EPOCH_SECONDS

    def test_memory_changes_under_load(self):
        workload = MachineWorkload(params(), seed=1)
        before = workload.fingerprint()
        workload.advance_epoch()
        after = workload.fingerprint()
        assert after.dirty_slots(since=before).size > 0

    def test_stable_set_never_changes(self):
        workload = MachineWorkload(params(stable_fraction=0.5), seed=2)
        stable_slots = np.setdiff1d(
            np.arange(workload.params.num_pages), workload._mutable
        )
        before = workload.image.slots[stable_slots].copy()
        for _ in range(20):
            workload.advance_epoch()
        after = workload.image.slots[stable_slots]
        assert (before == after).all()

    def test_determinism_per_seed(self):
        prints = []
        for _ in range(2):
            workload = MachineWorkload(params(), seed=42)
            for _ in range(5):
                workload.advance_epoch()
            prints.append(workload.fingerprint())
        assert (prints[0].hashes == prints[1].hashes).all()

    def test_different_seeds_differ(self):
        workloads = [MachineWorkload(params(), seed=s) for s in (1, 2)]
        for workload in workloads:
            for _ in range(3):
                workload.advance_epoch()
        assert (
            workloads[0].fingerprint().hashes != workloads[1].fingerprint().hashes
        ).any()


class TestRecallMechanism:
    def test_recalled_content_exists_in_old_snapshots(self):
        # The heart of the hashes-vs-dirty gap: after enough churn, some
        # dirty slots hold content that an old snapshot already had.
        workload = MachineWorkload(params(recall_fraction=0.4), seed=3)
        for _ in range(10):
            workload.advance_epoch()
        old = workload.fingerprint()
        for _ in range(10):
            workload.advance_epoch()
        new = workload.fingerprint()
        dirty = new.dirty_slots(since=old)
        assert dirty.size > 0
        dirty_contents = new.hashes[dirty]
        recalled = np.isin(dirty_contents, old.unique_hashes())
        assert recalled.sum() > 0

    def test_no_recall_means_no_reappearing_content(self):
        workload = MachineWorkload(
            params(recall_fraction=0.0, duplicate_fraction=0.0,
                   relocate_fraction=0.0, zero_fraction=0.0),
            seed=3,
        )
        for _ in range(5):
            workload.advance_epoch()
        old = workload.fingerprint()
        for _ in range(5):
            workload.advance_epoch()
        new = workload.fingerprint()
        dirty = new.dirty_slots(since=old)
        dirty_contents = new.hashes[dirty]
        # Fresh-only writes: changed content never reappears.
        assert not np.isin(dirty_contents, old.unique_hashes()).any()
