"""Unit tests for the text trace interchange format."""

import numpy as np
import pytest

from repro.core.fingerprint import Fingerprint
from repro.traces.generate import Trace
from repro.traces.io import (
    FORMAT_MAGIC,
    TraceFormatError,
    export_text,
    import_text,
)


def sample_trace():
    prints = [
        Fingerprint(hashes=np.asarray([1, 2, 2**63], dtype=np.uint64), timestamp=1800.0),
        Fingerprint(hashes=np.asarray([1, 9, 3], dtype=np.uint64), timestamp=3600.0),
    ]
    return Trace(machine="Test Box", ram_bytes=12288, fingerprints=prints)


class TestRoundtrip:
    def test_export_import(self, tmp_path):
        path = tmp_path / "trace.txt"
        original = sample_trace()
        export_text(original, path)
        loaded = import_text(path)
        assert loaded.machine == "Test Box"
        assert loaded.ram_bytes == 12288
        assert len(loaded) == 2
        for a, b in zip(original.fingerprints, loaded.fingerprints):
            assert a.timestamp == b.timestamp
            assert (a.hashes == b.hashes).all()

    def test_format_header(self, tmp_path):
        path = tmp_path / "trace.txt"
        export_text(sample_trace(), path)
        first = path.read_text().splitlines()[0]
        assert first == FORMAT_MAGIC

    def test_generated_trace_roundtrip(self, tmp_path, tiny_trace):
        path = tmp_path / "tiny.txt"
        export_text(tiny_trace, path)
        loaded = import_text(path)
        assert len(loaded) == len(tiny_trace)
        assert (
            loaded.fingerprints[-1].hashes == tiny_trace.fingerprints[-1].hashes
        ).all()


class TestErrors:
    def write(self, tmp_path, text):
        path = tmp_path / "bad.txt"
        path.write_text(text)
        return path

    def test_missing_magic(self, tmp_path):
        path = self.write(tmp_path, "hello\n")
        with pytest.raises(TraceFormatError, match="magic"):
            import_text(path)

    def test_missing_headers(self, tmp_path):
        path = self.write(tmp_path, f"{FORMAT_MAGIC}\nfingerprint 0\n01\n")
        with pytest.raises(TraceFormatError, match="headers required"):
            import_text(path)

    def test_bad_hash_line(self, tmp_path):
        path = self.write(
            tmp_path,
            f"{FORMAT_MAGIC}\n# machine: x\n# ram_bytes: 4096\n"
            "fingerprint 0\nnot-hex\n",
        )
        with pytest.raises(TraceFormatError, match="bad hash"):
            import_text(path)

    def test_hash_before_fingerprint(self, tmp_path):
        path = self.write(
            tmp_path,
            f"{FORMAT_MAGIC}\n# machine: x\n# ram_bytes: 4096\n0001\n",
        )
        with pytest.raises(TraceFormatError, match="before any fingerprint"):
            import_text(path)

    def test_inconsistent_page_counts(self, tmp_path):
        path = self.write(
            tmp_path,
            f"{FORMAT_MAGIC}\n# machine: x\n# ram_bytes: 4096\n"
            "fingerprint 0\n0001\n0002\nfingerprint 1800\n0001\n",
        )
        with pytest.raises(TraceFormatError, match="pages"):
            import_text(path)

    def test_no_fingerprints(self, tmp_path):
        path = self.write(
            tmp_path, f"{FORMAT_MAGIC}\n# machine: x\n# ram_bytes: 4096\n"
        )
        with pytest.raises(TraceFormatError, match="no fingerprints"):
            import_text(path)

    def test_bad_timestamp(self, tmp_path):
        path = self.write(
            tmp_path,
            f"{FORMAT_MAGIC}\n# machine: x\n# ram_bytes: 4096\n"
            "fingerprint soon\n0001\n",
        )
        with pytest.raises(TraceFormatError, match="timestamp"):
            import_text(path)

    def test_bad_ram_bytes(self, tmp_path):
        path = self.write(
            tmp_path,
            f"{FORMAT_MAGIC}\n# machine: x\n# ram_bytes: lots\n"
            "fingerprint 0\n0001\n",
        )
        with pytest.raises(TraceFormatError, match="ram_bytes"):
            import_text(path)
