"""Pinned-seed regressions for bugs the chaos soak shook out.

Each test here fails on the pre-fix code.  The live ones use the exact
deterministic fault recipe the soak found the bug with, so a regression
reproduces with the same bytes on the wire every run.
"""

import asyncio
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.fingerprint import Fingerprint
from repro.core.strategies import VECYCLE
from repro.mem.pagestore import PageStore
from repro.obs.metrics import get_registry
from repro.orchestrator.executor import AdmissionLimits, MigrationExecutor
from repro.runtime import (
    CheckpointDaemon,
    MigrationError,
    MigrationSource,
    RetryPolicy,
    RuntimeConfig,
    SourceState,
)
from repro.runtime.daemon import SinkProtocolError, _FaultPlan
from repro.runtime.frames import FrameCodec

N = 256
CHAOS_CONFIG = RuntimeConfig(
    io_timeout_s=0.3,
    connect_timeout_s=2.0,
    retry=RetryPolicy(max_attempts=4, base_backoff_s=0.01, max_backoff_s=0.02),
    time_scale=0.0,
)


def build_vm(seed: int = 5, updates: int = 32):
    """(checkpoint hashes, current hashes, dirty slots) — pinned RNG."""
    rng = np.random.default_rng(seed)
    checkpoint = rng.integers(1, 2**62, size=N, dtype=np.uint64)
    current = checkpoint.copy()
    dirty = np.sort(rng.choice(N, size=updates, replace=False))
    current[dirty] = rng.integers(2**62, 2**63, size=updates, dtype=np.uint64)
    return checkpoint, current, dirty


async def _run_with_plan(plan, max_attempts=2):
    """One executor-driven migration against a daemon with ``plan``."""
    pagestore = PageStore()
    checkpoint, current, dirty = build_vm()
    async with CheckpointDaemon(pagestore=pagestore) as daemon:
        daemon.install_checkpoint("vm", Fingerprint(hashes=checkpoint))
        daemon.install_fault_plan(plan)
        source = MigrationSource(
            SourceState(
                vm_id="vm",
                hashes=current,
                pagestore=pagestore,
                dirty_slots=dirty,
            ),
            VECYCLE,
            config=CHAOS_CONFIG,
        )
        executor = MigrationExecutor(
            AdmissionLimits(
                max_attempts=max_attempts,
                retry_backoff_s=0.01,
                max_backoff_s=0.02,
            )
        )
        outcome = await executor.run(
            source, "dest", daemon.host, daemon.port
        )
        return outcome, daemon.telemetry


# --- bug: truncated READY desync classified as a fatal protocol error ---


@pytest.mark.parametrize("cut", [1, 4, 8])
def test_truncated_ready_desync_is_retried(cut):
    """A READY frame short by a few bytes desyncs the reply stream.

    Pre-fix the source surfaced the garbage it then parsed (an unknown
    tag, or an impossible applied-count over-claim) as a non-retryable
    ``protocol`` error and the migration died on attempt 1.  Both are
    connection-shaped faults: a fresh session recovers, so the executor
    must retry — deterministically, for every truncation size.
    """
    outcome, telemetry = asyncio.run(
        _run_with_plan(_FaultPlan(truncate_ready_bytes=cut, truncate_times=1))
    )
    assert outcome.ok, f"cut={cut}: {outcome.error_code}: {outcome.error}"
    assert outcome.attempts == 2
    assert telemetry.counter("daemon.injected_truncations").value == 1


def test_truncation_exhausting_attempts_reports_desync():
    """With no attempts left, the failure keeps its desync classification."""
    outcome, _ = asyncio.run(
        _run_with_plan(
            _FaultPlan(truncate_ready_bytes=4, truncate_times=4),
            max_attempts=1,
        )
    )
    assert not outcome.ok
    assert outcome.attempts == 1
    assert outcome.error_code in ("protocol", "desync")


# --- bug: mid-RESULT drop must not double-install the checkpoint ---


def test_mid_result_replay_installs_one_generation():
    """An abort with RESULT on the wire replays the acknowledgement.

    The session is already committed when the connection dies; the
    reconnect must replay the RESULT, not re-adopt the checkpoint under
    a second generation or complete the session twice.
    """
    outcome, telemetry = asyncio.run(
        _run_with_plan(_FaultPlan(mid_result=True, times=1))
    )
    assert outcome.ok
    assert outcome.checkpoint_generation == 2  # install=1, migration=2
    assert telemetry.counter("daemon.sessions.completed").value == 1


# --- satellite: retry classification -------------------------------------


def test_migration_error_classification_defaults():
    assert MigrationError("transport", "x").retryable is True
    assert MigrationError("protocol", "x").retryable is False
    assert MigrationError("verification", "x").retryable is False
    # The desync escape hatch: an explicit flag wins over the code.
    assert MigrationError("protocol", "x", retryable=True).retryable is True


class _FlakySource:
    """Executor-facing stub: fails ``failures`` times, then succeeds."""

    def __init__(self, failures: int, code: str, retryable=None) -> None:
        self.state = SimpleNamespace(vm_id="vm-flaky")
        self.failures = failures
        self.code = code
        self.retryable = retryable
        self.resets = 0

    def reset_session(self) -> None:
        self.resets += 1

    async def migrate(self, host, port, dirty_feed=None):
        if self.failures > 0:
            self.failures -= 1
            raise MigrationError(self.code, "boom", retryable=self.retryable)
        return None


def _executor(max_attempts=3):
    return MigrationExecutor(
        AdmissionLimits(
            max_attempts=max_attempts,
            retry_backoff_s=0.001,
            max_backoff_s=0.002,
        )
    )


def test_executor_retries_retryable_protocol_with_fresh_session():
    source = _FlakySource(failures=1, code="protocol", retryable=True)
    outcome = asyncio.run(_executor().run(source, "d", "127.0.0.1", 1))
    assert outcome.ok
    assert outcome.attempts == 2
    # Desynced sessions cannot be resumed: the retry must start clean.
    assert source.resets == 1


def test_executor_fails_fast_on_codec_violation():
    source = _FlakySource(failures=1, code="protocol")
    outcome = asyncio.run(_executor().run(source, "d", "127.0.0.1", 1))
    assert not outcome.ok
    assert outcome.attempts == 1
    assert source.resets == 0


def test_executor_transport_retry_keeps_session():
    source = _FlakySource(failures=1, code="transport")
    outcome = asyncio.run(_executor().run(source, "d", "127.0.0.1", 1))
    assert outcome.ok
    assert outcome.attempts == 2
    # A transport drop's applied counts are exact; resume, don't reset.
    assert source.resets == 0


# --- satellite: shared capped-exponential backoff -------------------------


def test_backoff_is_capped_exponential():
    policy = RetryPolicy(
        max_attempts=8,
        base_backoff_s=0.1,
        backoff_factor=2.0,
        max_backoff_s=0.5,
        jitter=0.0,
    )
    assert policy.backoff(0) == pytest.approx(0.1)
    assert policy.backoff(1) == pytest.approx(0.2)
    assert policy.backoff(2) == pytest.approx(0.4)
    assert policy.backoff(3) == pytest.approx(0.5)  # capped
    assert policy.backoff(30) == pytest.approx(0.5)  # no overflow blowup


def test_backoff_jitter_is_deterministic_and_bounded():
    policy = RetryPolicy(
        max_attempts=4,
        base_backoff_s=0.1,
        backoff_factor=2.0,
        max_backoff_s=2.0,
        jitter=0.25,
    )
    for index in range(4):
        a = policy.backoff(index, key="vm-a")
        assert a == policy.backoff(index, key="vm-a")  # pure function
        base = min(0.1 * 2.0**index, 2.0)
        assert base * 0.75 <= a <= base * 1.25
    # Different VMs decorrelate: not every attempt sleeps identically.
    assert any(
        policy.backoff(i, key="vm-a") != policy.backoff(i, key="vm-b")
        for i in range(4)
    )


def test_admission_limits_map_to_shared_retry_policy():
    limits = AdmissionLimits(
        max_attempts=3,
        retry_backoff_s=0.02,
        max_backoff_s=0.3,
        retry_jitter=0.1,
    )
    policy = limits.retry_policy()
    assert policy.max_attempts == 3
    assert policy.base_backoff_s == pytest.approx(0.02)
    assert policy.max_backoff_s == pytest.approx(0.3)
    assert policy.jitter == pytest.approx(0.1)


def test_retry_policy_rejects_bad_jitter():
    with pytest.raises(ValueError, match="jitter"):
        RetryPolicy(jitter=1.5)


# --- satellite: drop_checkpoint leaves no stale delta history -------------


def test_drop_checkpoint_clears_delta_history_and_frees_durable(tmp_path):
    daemon = CheckpointDaemon(name="drop-host", state_dir=tmp_path)
    checkpoint, current, _ = build_vm()
    daemon.install_checkpoint("vm", Fingerprint(hashes=checkpoint))
    daemon.install_checkpoint("vm", Fingerprint(hashes=current))
    assert daemon._generations["vm"] == 2
    assert "vm" in daemon._delta_history
    distinct = len(set(daemon.checkpoints["vm"].slot_digests))
    resident_bytes = distinct * daemon.pagestore.page_size

    freed = daemon.drop_checkpoint("vm")

    # Pre-fix: freed == resident bytes only, and the delta history kept
    # describing generations the daemon no longer hosts.
    assert freed > resident_bytes  # durable segment bytes counted too
    assert "vm" not in daemon._delta_history
    # The generation counter must survive the drop (a restart at 1
    # would let a stale source earn a bogus verified skip).
    assert daemon._generations["vm"] == 2
    assert daemon.audit_store() == []
    hosted = daemon.install_checkpoint("vm", Fingerprint(hashes=checkpoint))
    assert hosted.generation == 3


# --- satellite: cleanup failures are counted, not swallowed ---------------


class _BrokenStream:
    async def send(self, payload: bytes) -> None:
        raise ConnectionError("peer vanished")


def test_undeliverable_error_frame_is_counted():
    daemon = CheckpointDaemon(name="count-host")
    before = get_registry().counter("daemon.close_errors").value
    asyncio.run(
        daemon._send_error(_BrokenStream(), SinkProtocolError("bad-hello", "x"))
    )
    assert get_registry().counter("daemon.close_errors").value == before + 1
    assert daemon.telemetry.counter("daemon.close_errors").value == 1


# --- bug: a desynced inbound stream must poison its session ---------------


def test_desynced_stream_retires_session_and_releases_refs():
    """Garbage after HELLO retires the session instead of keeping it.

    A desynced stream may have applied frames assembled from misaligned
    bytes; offering that session as a resume point would hand the
    source corrupt applied-counts.  The daemon must drop the session,
    release its content references, and answer with a ``desync`` ERROR.
    """

    async def scenario():
        pagestore = PageStore()
        checkpoint, _, _ = build_vm()
        async with CheckpointDaemon(pagestore=pagestore) as daemon:
            daemon.install_checkpoint("vm", Fingerprint(hashes=checkpoint))
            reader, writer = await asyncio.open_connection(
                daemon.host, daemon.port
            )
            codec = FrameCodec()
            writer.write(
                codec.encode_hello(
                    {
                        "session": "poison-1",
                        "vm_id": "vm",
                        "num_pages": N,
                        "mode": VECYCLE.method.value,
                        "page_size": pagestore.page_size,
                        "digest_size": VECYCLE.checksum.digest_size,
                        "algorithm": VECYCLE.checksum.name,
                    }
                )
            )
            await writer.drain()
            await reader.read(1)  # READY started: the session exists
            writer.write(b"\xee" + b"\x00" * 64)  # unknown tag: desync
            await writer.drain()
            reply = await asyncio.wait_for(reader.read(), timeout=5.0)
            writer.close()
            return daemon.telemetry, dict(daemon._sessions), daemon.audit_store(), reply

    telemetry, sessions, audit, reply = asyncio.run(scenario())
    assert telemetry.counter("daemon.sessions.poisoned").value == 1
    assert "poison-1" not in sessions
    assert audit == []  # every remaining ref explained by the checkpoint
    assert b"desync" in reply


# --- bug: quarantined segments must re-spill on re-adoption ---------------


def test_adoption_respills_quarantined_segment(tmp_path):
    daemon = CheckpointDaemon(name="respill-host", state_dir=tmp_path)
    checkpoint, _, _ = build_vm()
    hosted = daemon.install_checkpoint("vm", Fingerprint(hashes=checkpoint))
    digest = hosted.slot_digests[0]
    assert daemon.repository.has_segment(digest)

    assert daemon.repository.corrupt_segment(digest)
    report = daemon.repository.verify()
    assert report.corrupt_segments  # the scrub caught the damage
    assert not daemon.repository.has_segment(digest)

    # Re-adopting content the daemon still holds resident must re-spill
    # the quarantined segment before committing the new manifest
    # (pre-fix: commit_checkpoint raised on the missing segment).
    daemon.install_checkpoint("vm", Fingerprint(hashes=checkpoint))
    assert daemon.telemetry.counter("daemon.respilled_segments").value >= 1
    assert daemon.repository.has_segment(digest)
    assert not daemon.repository.verify().corrupt_segments


# --- bug: stop() must cancel handlers sleeping in injected stalls ---------


def test_stop_cancels_stalled_handlers_cleanly():
    """A handler mid-stall must not outlive (or spam) the event loop.

    Pre-fix, ``stop()`` closed the server but left connection handlers
    running; one sleeping in an injected READY stall survived until
    loop teardown cancelled it, and asyncio's callback then logged a
    CancelledError through the loop exception handler.
    """

    async def scenario():
        captured = []
        asyncio.get_running_loop().set_exception_handler(
            lambda loop, ctx: captured.append(ctx)
        )
        pagestore = PageStore()
        checkpoint, _, _ = build_vm()
        daemon = CheckpointDaemon(pagestore=pagestore)
        await daemon.start()
        daemon.install_checkpoint("vm", Fingerprint(hashes=checkpoint))
        daemon.install_fault_plan(_FaultPlan(stall_ready_s=30.0, stall_times=1))
        reader, writer = await asyncio.open_connection(daemon.host, daemon.port)
        codec = FrameCodec()
        writer.write(
            codec.encode_hello(
                {
                    "session": "stalled-1",
                    "vm_id": "vm",
                    "num_pages": N,
                    "mode": VECYCLE.method.value,
                    "page_size": pagestore.page_size,
                    "digest_size": VECYCLE.checksum.digest_size,
                    "algorithm": VECYCLE.checksum.name,
                }
            )
        )
        await writer.drain()
        await asyncio.sleep(0.1)  # handler is now asleep in the stall
        assert daemon._handlers

        start = asyncio.get_running_loop().time()
        await daemon.stop()
        elapsed = asyncio.get_running_loop().time() - start

        writer.close()
        await asyncio.sleep(0.05)  # let any stray callbacks fire
        current = asyncio.current_task()
        leaked = [t for t in asyncio.all_tasks() if t is not current]
        return elapsed, daemon._handlers, leaked, captured

    elapsed, handlers, leaked, captured = asyncio.run(scenario())
    assert elapsed < 5.0  # did not wait out the 30s stall
    assert not handlers
    assert leaked == []
    assert captured == []


# --- bug class: the telemetry-loss fault knob must be observable ----------


def test_telemetry_drop_knob_aborts_probe_and_counts():
    """``drop_telemetry_times`` drops exactly N probes, visibly.

    The soak's ``telemetry_loss`` kind arms this knob; the contract is
    that the armed probe dies unanswered (aggregator counts a failure,
    keeps its history) while ``daemon.injected_telemetry_drops`` records
    the injection, and the very next probe succeeds.
    """

    async def scenario():
        from repro.orchestrator.registry import ClusterRegistry
        from repro.orchestrator.telemetry import TelemetryAggregator

        registry = ClusterRegistry()
        aggregator = TelemetryAggregator(registry, poll_timeout_s=1.0)
        async with CheckpointDaemon(name="lossy") as daemon:
            daemon.install_fault_plan(_FaultPlan(drop_telemetry_times=1))
            registry.register("lossy", daemon.host, daemon.port)
            dropped = await aggregator.poll("lossy")
            recovered = await aggregator.poll("lossy")
            return dropped, recovered, aggregator, daemon.telemetry

    dropped, recovered, aggregator, telemetry = asyncio.run(scenario())
    assert dropped is None
    assert recovered is not None
    assert aggregator.poll_failures == 1
    assert telemetry.counter("daemon.injected_telemetry_drops").value == 1


# --- bug: an ERROR-frame opener fell through to the HELLO path ------------


def test_error_frame_opener_is_dropped_and_counted():
    """A peer opening with ERROR is logged and closed, not a protocol bug.

    Before the opener dispatch table, an ERROR first frame raised
    ``bad-hello`` and bounced an ERROR back at the erroring peer.  Now
    it lands in the ``daemon.peer_errors`` arm: counted, logged, and
    the connection closed without a reply.
    """

    async def scenario():
        async with CheckpointDaemon(name="patient") as daemon:
            reader, writer = await asyncio.open_connection(
                daemon.host, daemon.port
            )
            codec = FrameCodec()
            writer.write(
                codec.encode_error(
                    {"code": "confused-controller", "message": "oops"}
                )
            )
            await writer.drain()
            reply = await asyncio.wait_for(reader.read(), timeout=5.0)
            writer.close()
            return reply, daemon.telemetry

    reply, telemetry = asyncio.run(scenario())
    assert reply == b""  # closed without bouncing an ERROR back
    assert telemetry.counter("daemon.peer_errors").value == 1
