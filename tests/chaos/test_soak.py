"""Seed-sweep soak tests: invariants hold, runs are reproducible."""

import asyncio

from repro.chaos import FaultKind, FaultSchedule, run_soak
from repro.chaos.soak import run_soak_async

# Seeds chosen to jointly cover every fault kind at these parameters
# (verified by the kind_counts assertions below), while staying small
# enough for CI: a handful of localhost migrations per seed.
SWEEP_SEEDS = (3, 7)
SWEEP_KW = dict(migrations=6, hosts=3, num_pages=96)


def test_seed_sweep_holds_invariants():
    covered = set()
    for seed in SWEEP_SEEDS:
        report = run_soak(seed=seed, **SWEEP_KW)
        assert report.ok, f"seed {seed}: {report.violations}"
        assert report.rounds == 6
        assert sum(report.faults_injected.values()) > 0
        covered.update(report.schedule.kind_counts())
    # The sweep must actually exercise the protocol-fault vocabulary.
    assert FaultKind.DISCONNECT in covered or FaultKind.MID_RESULT in covered


def test_same_seed_same_signature():
    a = run_soak(seed=7, **SWEEP_KW)
    b = run_soak(seed=7, **SWEEP_KW)
    assert a.ok and b.ok
    assert a.signature() == b.signature()


def test_explicit_schedule_replays_identically():
    schedule = FaultSchedule.generate(seed=7, rounds=6)
    replay = FaultSchedule.from_json(schedule.to_json())
    seeded = run_soak(seed=7, **SWEEP_KW)
    replayed = run_soak(seed=7, schedule=replay, **SWEEP_KW)
    assert seeded.signature() == replayed.signature()


def test_restart_seed_recovers_and_stays_clean():
    # Seed 11 schedules daemon kill+restart faults at these parameters;
    # the restarted daemon must recover its durable checkpoints without
    # double-counting them, and every invariant must still hold.
    report = run_soak(seed=11, migrations=8, hosts=3, num_pages=128)
    assert FaultKind.RESTART in report.schedule.kind_counts()
    assert report.restarts >= 1
    assert report.ok, report.violations


def test_vdi_schedule_smoke():
    report = run_soak(seed=1, vdi=True, days=2, hosts=3, num_pages=96)
    assert report.rounds == 4  # two commute legs per weekday
    assert report.ok, report.violations


def test_report_serializes():
    report = run_soak(seed=3, migrations=4, hosts=2, num_pages=64)
    data = report.to_dict()
    assert data["seed"] == 3
    assert len(data["rounds"]) == report.rounds
    assert data["invariants_ok"] is True
    assert isinstance(report.signature(), dict)


def test_soak_runs_inside_existing_loop():
    # The async entry point composes with callers that already own a
    # loop (the orchestrator experiments drive it this way).
    async def scenario():
        return await run_soak_async(seed=2, migrations=3, hosts=2, num_pages=64)

    report = asyncio.run(scenario())
    assert report.rounds == 3
    assert report.ok, report.violations
