"""FaultSchedule: determinism, serialization, and validation."""

import pytest

from repro.chaos import FAULT_KINDS, FaultKind, FaultSchedule, FaultSpec


def test_same_seed_same_schedule():
    a = FaultSchedule.generate(seed=7, rounds=24)
    b = FaultSchedule.generate(seed=7, rounds=24)
    assert a == b
    assert a.faults == b.faults


def test_different_seeds_diverge():
    a = FaultSchedule.generate(seed=1, rounds=24)
    b = FaultSchedule.generate(seed=2, rounds=24)
    assert a.faults != b.faults


def test_intensity_bounds_fault_count():
    none = FaultSchedule.generate(seed=3, rounds=16, intensity=0.0)
    assert none.faults == ()
    full = FaultSchedule.generate(seed=3, rounds=16, intensity=1.0)
    assert len(full.faults) == 16


def test_at_most_one_fault_per_round():
    schedule = FaultSchedule.generate(seed=5, rounds=40)
    for round_no in range(40):
        assert len(schedule.for_round(round_no)) <= 1


def test_kind_restriction_honoured():
    kinds = (FaultKind.DISCONNECT, FaultKind.STALL_UNDER)
    schedule = FaultSchedule.generate(seed=9, rounds=30, kinds=kinds)
    assert schedule.faults  # 30 rounds at default intensity: non-empty
    assert set(schedule.kind_counts()) <= set(kinds)


def test_json_roundtrip_is_lossless():
    schedule = FaultSchedule.generate(seed=11, rounds=20)
    assert FaultSchedule.from_json(schedule.to_json()) == schedule


def test_json_encoding_is_stable():
    schedule = FaultSchedule.generate(seed=11, rounds=20)
    assert schedule.to_json() == schedule.to_json()


def test_from_json_rejects_unknown_version():
    with pytest.raises(ValueError, match="version"):
        FaultSchedule.from_json('{"version": 99, "seed": 0, "faults": []}')


def test_spec_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec(round_no=0, kind="coffee_spill")


def test_spec_rejects_negative_round():
    with pytest.raises(ValueError, match="round_no"):
        FaultSpec(round_no=-1, kind=FaultKind.DISCONNECT)


def test_generate_validates_arguments():
    with pytest.raises(ValueError, match="intensity"):
        FaultSchedule.generate(seed=0, rounds=4, intensity=1.5)
    with pytest.raises(ValueError, match="rounds"):
        FaultSchedule.generate(seed=0, rounds=-1)
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSchedule.generate(seed=0, rounds=4, kinds=("bogus",))


def test_kind_counts_sum_to_schedule_length():
    schedule = FaultSchedule.generate(seed=13, rounds=50)
    assert sum(schedule.kind_counts().values()) == len(schedule.faults)
    assert set(schedule.kind_counts()) <= set(FAULT_KINDS)


def test_describe_names_every_fault():
    schedule = FaultSchedule.generate(seed=4, rounds=12)
    text = schedule.describe()
    assert f"seed={schedule.seed}" in text
    for fault in schedule.faults:
        assert fault.kind in text
