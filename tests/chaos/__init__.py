"""Tests for the deterministic chaos plane."""
