"""The reproduction digest must pass its own claims."""

from repro.experiments import summary


class TestSummary:
    def test_all_claims_hold_at_quick_scale(self):
        claims = summary.run(quick=True)
        failing = [claim.text for claim in claims if not claim.holds]
        assert not failing, failing

    def test_covers_every_evaluation_section(self):
        claims = summary.run(quick=True)
        sources = " ".join(claim.source for claim in claims)
        for marker in ("Fig 1", "Fig 5", "Fig 6", "Fig 7", "Fig 8"):
            assert marker in sources

    def test_format_has_verdicts(self):
        claims = summary.run(quick=True)
        text = summary.format_table(claims)
        assert "PASS" in text
        assert f"{len(claims)}/{len(claims)}" in text
