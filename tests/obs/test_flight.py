"""Flight recorder: bounded ring, crash-path dumps, exporter flushes."""

from __future__ import annotations

import sys

import pytest

from repro.obs import flight
from repro.obs.flight import (
    FLIGHT_DIR_ENV,
    FlightRecorder,
    read_dump,
)


@pytest.fixture(autouse=True)
def flight_dir(tmp_path, monkeypatch):
    """Every test dumps into its own directory."""
    monkeypatch.setenv(FLIGHT_DIR_ENV, str(tmp_path))
    return tmp_path


class TestRing:
    def test_ring_is_bounded(self):
        recorder = FlightRecorder("t", capacity=3)
        for i in range(10):
            recorder.note("event", i=i)
        assert len(recorder.events) == 3
        assert [e["i"] for e in recorder.events] == [7, 8, 9]

    def test_note_stamps_time_and_kind(self):
        recorder = FlightRecorder("t")
        recorder.note("frame", frame_type="result")
        event = recorder.events[-1]
        assert event["kind"] == "frame"
        assert event["frame_type"] == "result"
        assert event["t"] > 0


class TestDump:
    def test_dump_roundtrips_through_read_dump(self, flight_dir):
        recorder = FlightRecorder("victim", capacity=8)
        recorder.note("session", vm="vm-1")
        recorder.note("daemon.result", vm="vm-1", ok=True)
        path = recorder.dump("test crash")
        assert path is not None
        assert path.startswith(str(flight_dir))
        dump = read_dump(path)
        assert dump["header"]["name"] == "victim"
        assert dump["header"]["reason"] == "test crash"
        assert dump["header"]["events"] == 2
        kinds = [e["kind"] for e in dump["events"]]
        assert kinds == ["session", "daemon.result"]
        assert isinstance(dump["metrics"], dict)

    def test_empty_ring_dumps_nothing(self):
        assert FlightRecorder("empty").dump("nothing happened") is None

    def test_unwritable_directory_returns_none_not_raise(self, tmp_path):
        recorder = FlightRecorder("t")
        recorder.note("x")
        target = tmp_path / "file-not-dir"
        target.write_text("occupied")
        assert recorder.dump("r", directory=str(target)) is None

    def test_dump_filenames_are_unique_per_dump(self, flight_dir):
        recorder = FlightRecorder("t")
        recorder.note("x")
        first = recorder.dump("a")
        second = recorder.dump("b")
        assert first != second

    def test_env_var_overrides_dump_dir(self, flight_dir):
        assert flight.dump_dir() == str(flight_dir)


class TestDumpAll:
    def test_dump_all_covers_live_recorders(self, flight_dir):
        recorder = FlightRecorder("comp-a")
        recorder.note("x")
        paths = flight.dump_all("sweep")
        assert any("comp-a" in p for p in paths)

    def test_dump_all_runs_registered_flushes_first(self, monkeypatch):
        calls = []
        monkeypatch.setattr(flight, "_flushers", [lambda: calls.append(1)])
        flight.dump_all("flush check")
        assert calls == [1]

    def test_failing_flush_does_not_stop_others(self, monkeypatch):
        calls = []

        def bad():
            raise RuntimeError("flush broke")

        monkeypatch.setattr(
            flight, "_flushers", [bad, lambda: calls.append(1)]
        )
        flight.flush_all()
        assert calls == [1]


class TestInstall:
    def test_excepthook_chains_and_dumps(self, flight_dir, monkeypatch):
        seen = []
        monkeypatch.setattr(
            sys, "excepthook", lambda *args: seen.append(args)
        )
        monkeypatch.setattr(flight, "_installed", False)
        flight.install(capture_logs=False)
        assert sys.excepthook is not None
        error = ValueError("boom")
        sys.excepthook(ValueError, error, None)
        # The original hook still ran (traceback still prints)...
        assert seen and seen[0][1] is error
        # ...and the crash landed in the default ring and on disk.
        events = list(flight.default_recorder().events)
        assert any(
            e["kind"] == "crash" and e["message"] == "boom" for e in events
        )
        assert list(flight_dir.glob("flight-*.jsonl"))

    def test_install_is_idempotent(self, monkeypatch):
        monkeypatch.setattr(flight, "_installed", False)
        flight.install(capture_logs=False)
        hook = sys.excepthook
        flight.install(capture_logs=False)
        assert sys.excepthook is hook

    def test_sigusr2_handler_dumps_and_reports(self, flight_dir, capsys):
        flight.default_recorder().note("alive")
        flight._on_sigusr2(None, None)
        captured = capsys.readouterr()
        assert "flight recorder: wrote" in captured.err
        assert list(flight_dir.glob("flight-process-*.jsonl"))


class TestLogCapture:
    def test_warning_logs_land_in_default_ring(self, monkeypatch):
        import logging

        monkeypatch.setattr(flight, "_installed", False)
        flight.install(capture_logs=True)
        logging.getLogger("repro.test_flight").warning("trouble %s", "here")
        events = list(flight.default_recorder().events)
        assert any(
            e["kind"] == "log" and e["message"] == "trouble here"
            for e in events
        )
