"""Wire-exportable metrics snapshots: delta, merge, cardinality guard."""

from __future__ import annotations

import pytest

from repro.obs import enable as enable_tracing, span
from repro.obs.telemetry import (
    OVERFLOW_LABEL,
    MetricsSnapshot,
    TelemetrySource,
    accumulate_instruments,
    get_active_aggregator,
    merge_instruments,
    set_active_aggregator,
    span_census,
)


def make_source(name="hostA", **kwargs) -> TelemetrySource:
    return TelemetrySource(name, **kwargs)


class TestSnapshotRoundtrip:
    def test_to_dict_from_dict_is_lossless(self):
        source = make_source()
        source.counter("daemon.pages_received").add(7)
        source.gauge("daemon.sessions.active").set(2)
        source.histogram("daemon.round_seconds", (1.0, 10.0)).observe(0.5)
        source.vm_count("vm-1", "recycled_bytes", 4096)
        snapshot = source.snapshot()
        clone = MetricsSnapshot.from_dict(snapshot.to_dict())
        assert clone.host == "hostA"
        assert clone.seq == snapshot.seq == 1
        assert clone.taken_at == snapshot.taken_at
        assert clone.instruments == snapshot.instruments
        assert clone.per_vm == {"vm-1": {"recycled_bytes": 4096.0}}

    def test_from_dict_tolerates_missing_fields(self):
        snapshot = MetricsSnapshot.from_dict({})
        assert snapshot.host == ""
        assert snapshot.seq == 0
        assert snapshot.instruments == {}

    def test_seq_advances_per_snapshot_not_per_read(self):
        source = make_source()
        assert source.seq == 0
        source.snapshot()
        source.snapshot()
        assert source.seq == 2
        source.sections()  # scrapes must not disturb wire bookkeeping
        assert source.seq == 2


class TestDeltaSemantics:
    def test_counter_delta_between_consecutive_snapshots(self):
        source = make_source()
        source.counter("c").add(5)
        first = source.snapshot()
        source.counter("c").add(3)
        second = source.snapshot()
        delta, restarted = second.delta(first)
        assert not restarted
        assert delta.instruments["c"]["value"] == 3

    def test_histogram_delta_diffs_counts_and_sum(self):
        source = make_source()
        hist = source.histogram("h", (10.0,))
        hist.observe(5)
        first = source.snapshot()
        hist.observe(50)
        second = source.snapshot()
        delta, restarted = second.delta(first)
        assert not restarted
        state = delta.instruments["h"]
        assert state["counts"] == [0, 1]
        assert state["total"] == 1
        assert state["sum"] == pytest.approx(50.0)

    def test_gauge_passes_through_latest_level(self):
        source = make_source()
        source.gauge("g").set(10)
        first = source.snapshot()
        source.gauge("g").set(4)
        second = source.snapshot()
        delta, _ = second.delta(first)
        assert delta.instruments["g"]["value"] == 4

    def test_no_earlier_snapshot_is_a_restart(self):
        source = make_source()
        source.counter("c").add(1)
        snapshot = source.snapshot()
        delta, restarted = snapshot.delta(None)
        assert restarted
        assert delta is snapshot

    def test_seq_regression_is_a_restart(self):
        old = make_source()
        old.counter("c").add(9)
        before = old.snapshot()
        before_again = old.snapshot()
        reborn = make_source()  # fresh process: seq starts over
        reborn.counter("c").add(2)
        after = reborn.snapshot()
        assert after.restarted_since(before_again)
        delta, restarted = after.delta(before)
        assert restarted
        # The full post-restart snapshot is the increment.
        assert delta.instruments["c"]["value"] == 2

    def test_shrinking_counter_is_a_restart_even_with_higher_seq(self):
        first = MetricsSnapshot(
            host="a", seq=1, taken_at=0.0,
            instruments={"c": {"type": "counter", "value": 100.0}},
        )
        second = MetricsSnapshot(
            host="a", seq=5, taken_at=1.0,
            instruments={"c": {"type": "counter", "value": 3.0}},
        )
        assert second.restarted_since(first)

    def test_per_vm_delta_drops_unchanged_vms(self):
        source = make_source()
        source.vm_count("vm-a", "x", 5)
        source.vm_count("vm-b", "x", 1)
        first = source.snapshot()
        source.vm_count("vm-a", "x", 2)
        second = source.snapshot()
        delta, _ = second.delta(first)
        assert delta.per_vm == {"vm-a": {"x": 2.0}}


class TestAccumulateAndMerge:
    def test_accumulate_adds_counters_and_histograms(self):
        acc = {}
        accumulate_instruments(
            acc, {"c": {"type": "counter", "value": 2.0}}
        )
        accumulate_instruments(
            acc, {"c": {"type": "counter", "value": 3.0}}
        )
        assert acc["c"]["value"] == 5.0

    def test_accumulate_gauge_is_last_write_wins(self):
        acc = {}
        accumulate_instruments(acc, {"g": {"type": "gauge", "value": 9.0}})
        accumulate_instruments(acc, {"g": {"type": "gauge", "value": 4.0}})
        assert acc["g"]["value"] == 4.0

    def test_accumulate_histogram_combines_extremes(self):
        base = {
            "type": "histogram", "boundaries": [10.0], "counts": [1, 0],
            "total": 1, "sum": 5.0, "mean": 5.0, "min": 5.0, "max": 5.0,
        }
        more = {
            "type": "histogram", "boundaries": [10.0], "counts": [0, 1],
            "total": 1, "sum": 50.0, "mean": 50.0, "min": 50.0, "max": 50.0,
        }
        acc = {}
        accumulate_instruments(acc, {"h": base})
        accumulate_instruments(acc, {"h": more})
        state = acc["h"]
        assert state["counts"] == [1, 1]
        assert state["total"] == 2
        assert state["min"] == 5.0 and state["max"] == 50.0
        assert state["mean"] == pytest.approx(27.5)

    def test_merge_sums_counters_and_gauges_across_hosts(self):
        merged = merge_instruments(
            [
                {"c": {"type": "counter", "value": 2.0},
                 "g": {"type": "gauge", "value": 1.0}},
                {"c": {"type": "counter", "value": 5.0},
                 "g": {"type": "gauge", "value": 3.0}},
            ]
        )
        assert merged["c"]["value"] == 7.0
        # Cluster gauge = sum of per-host levels ("active sessions").
        assert merged["g"]["value"] == 4.0

    def test_merge_does_not_mutate_inputs(self):
        one = {"c": {"type": "counter", "value": 1.0}}
        two = {"c": {"type": "counter", "value": 2.0}}
        merge_instruments([one, two])
        assert one["c"]["value"] == 1.0
        assert two["c"]["value"] == 2.0


class TestCardinalityGuard:
    def test_per_vm_series_fold_past_the_cap(self):
        source = make_source(max_vm_labels=2)
        source.vm_count("vm-1", "x", 1)
        source.vm_count("vm-2", "x", 1)
        source.vm_count("vm-3", "x", 1)
        source.vm_count("vm-4", "x", 1)
        snapshot = source.snapshot()
        assert set(snapshot.per_vm) == {"vm-1", "vm-2", OVERFLOW_LABEL}
        assert snapshot.per_vm[OVERFLOW_LABEL]["x"] == 2.0
        assert (
            snapshot.instruments["telemetry.labels_folded"]["value"] == 2.0
        )

    def test_existing_vm_keeps_counting_past_the_cap(self):
        source = make_source(max_vm_labels=1)
        source.vm_count("vm-1", "x", 1)
        source.vm_count("vm-2", "x", 1)  # folds
        source.vm_count("vm-1", "x", 1)  # still direct
        snapshot = source.snapshot()
        assert snapshot.per_vm["vm-1"]["x"] == 2.0


class TestSections:
    def test_sections_label_host_then_vm(self):
        source = make_source("hostB")
        source.counter("daemon.heartbeats").add(1)
        source.vm_count("vm-1", "recycled_bytes", 4096)
        sections = source.sections()
        assert sections[0][0] == {"host": "hostB"}
        assert "daemon.heartbeats" in sections[0][1]
        assert sections[1][0] == {"host": "hostB", "vm": "vm-1"}
        assert sections[1][1]["recycled_bytes"]["value"] == 4096.0


class TestSpanCensus:
    def test_census_counts_matching_prefixes(self):
        enable_tracing()
        with span("daemon.round"):
            pass
        with span("daemon.round"):
            pass
        with span("orchestrator.place"):
            pass
        census = span_census(("daemon.",))
        assert census["daemon.round"]["count"] == 2.0
        assert "orchestrator.place" not in census

    def test_census_empty_when_tracing_off(self):
        assert span_census(("daemon.",)) == {}


class TestActiveAggregatorHook:
    def test_set_and_get(self):
        sentinel = object()
        set_active_aggregator(sentinel)
        try:
            assert get_active_aggregator() is sentinel
        finally:
            set_active_aggregator(None)
        assert get_active_aggregator() is None
