"""Prometheus exposition rendering and the scrape endpoint."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import (
    MetricsServer,
    metric_name,
    parse_exposition,
    render_instruments,
    render_sections,
)


class TestNaming:
    def test_dotted_names_sanitize_with_prefix(self):
        assert (
            metric_name("daemon.pages_received", "counter")
            == "vecycle_daemon_pages_received_total"
        )

    def test_gauges_do_not_get_total_suffix(self):
        assert (
            metric_name("daemon.sessions.active", "gauge")
            == "vecycle_daemon_sessions_active"
        )

    def test_headline_renames(self):
        assert (
            metric_name("daemon.recycled_bytes", "counter")
            == "vecycle_recycled_bytes_total"
        )
        assert (
            metric_name("daemon.transferred_bytes", "counter")
            == "vecycle_transferred_bytes_total"
        )
        assert (
            metric_name("orchestrator.downtime_seconds", "histogram")
            == "vecycle_migration_downtime_seconds"
        )


class TestRendering:
    def test_counter_and_gauge_lines_with_labels(self):
        registry = MetricsRegistry()
        registry.counter("daemon.heartbeats").add(3)
        registry.gauge("daemon.sessions.active").set(2)
        lines = render_instruments(registry.snapshot(), {"host": "a"})
        text = "\n".join(lines)
        assert 'vecycle_daemon_heartbeats_total{host="a"} 3' in text
        assert 'vecycle_daemon_sessions_active{host="a"} 2' in text
        assert "# TYPE vecycle_daemon_heartbeats_total counter" in text
        assert "# TYPE vecycle_daemon_sessions_active gauge" in text

    def test_histogram_buckets_are_cumulative_and_end_in_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", (10.0, 100.0))
        for value in (1, 50, 5000):
            hist.observe(value)
        text = "\n".join(render_instruments(registry.snapshot()))
        assert 'vecycle_h_bucket{le="10"} 1' in text
        assert 'vecycle_h_bucket{le="100"} 2' in text
        assert 'vecycle_h_bucket{le="+Inf"} 3' in text
        assert "vecycle_h_sum 5051" in text
        assert "vecycle_h_count 3" in text

    def test_sections_share_headers_across_labels(self):
        instruments = {"c": {"type": "counter", "value": 1.0}}
        text = render_sections(
            [({"host": "a"}, instruments), ({"host": "b"}, instruments)]
        )
        assert text.count("# TYPE vecycle_c_total counter") == 1
        assert 'vecycle_c_total{host="a"} 1' in text
        assert 'vecycle_c_total{host="b"} 1' in text

    def test_empty_sections_render_empty_page(self):
        assert render_sections([]) == ""

    def test_label_values_are_escaped(self):
        text = render_sections(
            [({"vm": 'we"ird\nname'}, {"c": {"type": "counter", "value": 1.0}})]
        )
        assert '\\"' in text and "\\n" in text


class TestParseExposition:
    def test_roundtrip_through_parse(self):
        registry = MetricsRegistry()
        registry.counter("daemon.recycled_bytes").add(4096)
        text = render_sections([({"host": "a"}, registry.snapshot())])
        parsed = parse_exposition(text)
        assert parsed["vecycle_recycled_bytes_total"][
            (("host", "a"),)
        ] == pytest.approx(4096.0)

    def test_parse_skips_comments_and_blanks(self):
        parsed = parse_exposition("# HELP x y\n\nvecycle_x_total 5\n")
        assert parsed["vecycle_x_total"][()] == 5.0


class TestMetricsServer:
    def test_serves_metrics_json_and_healthz(self):
        server = MetricsServer(
            render_text=lambda: "vecycle_up 1\n",
            render_json=lambda: {"hosts": ["a"]},
            port=0,
        ).start()
        try:
            assert server.port > 0
            base = f"http://127.0.0.1:{server.port}"
            with urllib.request.urlopen(base + "/metrics", timeout=5) as r:
                assert r.status == 200
                assert "version=0.0.4" in r.headers["Content-Type"]
                assert r.read() == b"vecycle_up 1\n"
            with urllib.request.urlopen(
                base + "/metrics.json", timeout=5
            ) as r:
                assert json.loads(r.read()) == {"hosts": ["a"]}
            with urllib.request.urlopen(base + "/healthz", timeout=5) as r:
                assert r.read() == b"ok\n"
        finally:
            server.stop()

    def test_unknown_path_is_404(self):
        server = MetricsServer(render_text=lambda: "", port=0).start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{server.port}/nope", timeout=5
                )
            assert excinfo.value.code == 404
        finally:
            server.stop()

    def test_content_is_rendered_per_request(self):
        state = {"n": 0}

        def render():
            state["n"] += 1
            return f"vecycle_scrapes_total {state['n']}\n"

        server = MetricsServer(render_text=render, port=0).start()
        try:
            url = f"http://127.0.0.1:{server.port}/metrics"
            first = urllib.request.urlopen(url, timeout=5).read()
            second = urllib.request.urlopen(url, timeout=5).read()
            assert first != second
        finally:
            server.stop()
