"""Exporters: JSONL round-trip, Chrome trace_event shape, summary tree."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    export_trace,
    get_registry,
    get_tracer,
    read_jsonl,
    span,
    summary_tree,
    to_chrome_trace,
    to_jsonl_lines,
    write_jsonl,
)
from repro.obs.trace import SpanRecord


def _record(span_id, parent_id, name, start_s, duration_s, **kwargs):
    return SpanRecord(
        span_id=span_id,
        parent_id=parent_id,
        name=name,
        start_s=start_s,
        duration_s=duration_s,
        **kwargs,
    )


@pytest.fixture
def sample_records():
    """A deterministic two-task span forest with an instant event."""
    return [
        _record(2, 1, "connect", 0.001, 0.002, task="source"),
        _record(3, 1, "round", 0.004, 0.010, task="source",
                attrs={"round_no": 1}, modelled_s=0.5),
        _record(5, 4, "daemon.round", 0.005, 0.009, task="daemon"),
        _record(6, 1, "mark", 0.014, 0.0, task="source", kind="instant"),
        _record(1, 0, "runtime.migrate", 0.0, 0.020, task="source",
                attrs={"vm": "vm0"}, modelled_s=0.5),
        _record(4, 0, "daemon.session", 0.002, 0.018, task="daemon"),
    ]


def test_jsonl_round_trip_is_exact(tmp_path, sample_records):
    path = str(tmp_path / "trace.jsonl")
    registry = get_registry()
    registry.counter("runtime.retries").add(1)
    write_jsonl(path, sample_records, registry)
    lines = open(path).read().splitlines()
    # one line per record plus the trailing metrics line
    assert len(lines) == len(sample_records) + 1
    assert json.loads(lines[-1])["kind"] == "metrics"
    loaded = read_jsonl(path)
    assert [r.to_dict() for r in loaded] == [r.to_dict() for r in sample_records]


def test_jsonl_omits_metrics_line_when_registry_empty(sample_records):
    lines = to_jsonl_lines(sample_records, get_registry())
    assert len(lines) == len(sample_records)


def test_chrome_trace_structure(sample_records):
    registry = get_registry()
    registry.counter("engine.migrations").add(3)
    trace = to_chrome_trace(sample_records, registry, process_name="proc")
    events = trace["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    spans = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    assert {e["args"]["name"] for e in meta} == {"proc", "source", "daemon"}
    assert len(spans) == 5 and len(instants) == 1
    # one tid lane per task label
    by_task = {}
    for record, event in zip(sample_records, events[2:]):
        by_task.setdefault(record.task, set()).add(event["tid"])
    migrate = next(e for e in spans if e["name"] == "runtime.migrate")
    assert migrate["ts"] == 0.0
    assert migrate["dur"] == pytest.approx(20000.0)
    assert migrate["cat"] == "runtime"
    assert migrate["args"]["vm"] == "vm0"
    assert migrate["args"]["modelled_s"] == pytest.approx(0.5)
    source_tids = {e["tid"] for e in spans + instants
                   if e["name"] in ("connect", "round", "runtime.migrate", "mark")}
    daemon_tids = {e["tid"] for e in spans
                   if e["name"].startswith("daemon.")}
    assert len(source_tids) == 1 and len(daemon_tids) == 1
    assert source_tids != daemon_tids
    assert trace["otherData"]["metrics"]["engine.migrations"]["value"] == 3


def test_chrome_trace_is_valid_json(sample_records):
    json.loads(json.dumps(to_chrome_trace(sample_records)))


def test_summary_tree_merges_and_indents(sample_records):
    extra_round = _record(7, 1, "round", 0.015, 0.004, task="source",
                          attrs={"round_no": 2})
    tree = summary_tree(sample_records + [extra_round])
    lines = tree.splitlines()
    assert lines[0].startswith("runtime.migrate  1x")
    assert any(line.lstrip("|'- ").startswith("round  2x") for line in lines)
    assert "mark" not in tree  # instants are excluded from the tree
    # the two roots both render at column zero
    assert any(line.startswith("daemon.session  1x") for line in lines)
    assert any(line.startswith("'- daemon.round  1x") for line in lines)
    # modelled time annotated where present
    migrate_line = lines[0]
    assert "(modelled" in migrate_line


def test_summary_tree_empty():
    assert summary_tree([]) == "(no spans recorded)"


def test_summary_tree_orphan_spans_become_roots():
    orphan = _record(9, 999, "lost", 0.0, 0.001)
    assert summary_tree([orphan]).startswith("lost  1x")


def test_export_trace_formats(tmp_path):
    tracer = get_tracer()
    tracer.enable()
    with span("top"):
        pass
    chrome_path = str(tmp_path / "t.json")
    jsonl_path = str(tmp_path / "t.jsonl")
    export_trace(chrome_path, fmt="chrome")
    export_trace(jsonl_path, fmt="jsonl")
    assert "traceEvents" in json.load(open(chrome_path))
    assert read_jsonl(jsonl_path)[0].name == "top"
    with pytest.raises(ValueError):
        export_trace(str(tmp_path / "x"), fmt="svg")
