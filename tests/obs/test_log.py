"""Structured logging: key=value rendering, hierarchy, verbosity."""

from __future__ import annotations

import io
import logging

import pytest

from repro.obs.log import configure, get_logger


@pytest.fixture(autouse=True)
def restore_logging():
    yield
    configure(verbosity=0)


def test_get_logger_nests_under_repro():
    assert get_logger("repro.runtime.source").logger.name == "repro.runtime.source"
    assert get_logger("benchmarks.helper").logger.name == "repro.benchmarks.helper"
    assert get_logger().logger.name == "repro"


def test_key_value_rendering():
    stream = io.StringIO()
    configure(verbosity=1, stream=stream)
    get_logger("test").info("migration done", vm="vm0", bytes=1234)
    output = stream.getvalue()
    assert "migration done  vm=vm0 bytes=1234" in output
    assert "INFO" in output and "repro.test" in output


def test_verbosity_levels():
    for verbosity, level in ((-1, logging.ERROR), (0, logging.WARNING),
                             (1, logging.INFO), (2, logging.DEBUG),
                             (5, logging.DEBUG)):
        root = configure(verbosity=verbosity, stream=io.StringIO())
        assert root.level == level


def test_configure_is_idempotent():
    stream = io.StringIO()
    configure(verbosity=0, stream=stream)
    root = configure(verbosity=0, stream=stream)
    named = [h for h in root.handlers if h.get_name() == "repro-obs"]
    assert len(named) == 1


def test_default_verbosity_suppresses_info():
    stream = io.StringIO()
    configure(verbosity=0, stream=stream)
    log = get_logger("quiet")
    log.info("hidden", detail=1)
    log.warning("shown")
    output = stream.getvalue()
    assert "hidden" not in output
    assert "shown" in output
