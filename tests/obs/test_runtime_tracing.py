"""Tracing a real live migration: span coverage and wall-time parity."""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.core.fingerprint import Fingerprint
from repro.core.strategies import VECYCLE
from repro.mem.pagestore import PageStore
from repro.obs import get_registry, get_tracer, to_chrome_trace
from repro.runtime import (
    CheckpointDaemon,
    MigrationSource,
    RetryPolicy,
    RuntimeConfig,
    SourceState,
)

N = 1024
FAST = RuntimeConfig(
    io_timeout_s=5.0,
    connect_timeout_s=5.0,
    retry=RetryPolicy(max_attempts=4, base_backoff_s=0.01, max_backoff_s=0.05),
    time_scale=0.0,
)


def _build_vm(seed: int = 11, updates: int = 100):
    rng = np.random.default_rng(seed)
    checkpoint = rng.integers(1, 2**62, size=N, dtype=np.uint64)
    current = checkpoint.copy()
    dirty = np.sort(rng.choice(N, size=updates, replace=False))
    current[dirty] = rng.integers(2**62, 2**63, size=updates, dtype=np.uint64)
    return checkpoint, current


async def _migrate_traced(daemon_setup=None):
    checkpoint, current = _build_vm()
    pagestore = PageStore()
    async with CheckpointDaemon(pagestore=pagestore) as daemon:
        daemon.install_checkpoint("vm", Fingerprint(hashes=checkpoint))
        if daemon_setup is not None:
            daemon_setup(daemon)
        source = MigrationSource(
            SourceState(vm_id="vm", hashes=current, pagestore=pagestore),
            VECYCLE,
            config=FAST,
        )
        return await source.migrate(daemon.host, daemon.port)


@pytest.fixture
def traced_migration():
    tracer = get_tracer()
    tracer.enable()
    metrics = asyncio.run(_migrate_traced())
    return metrics, tracer.finished()


def _children_of(records, parent_id):
    return [r for r in records if r.parent_id == parent_id and r.kind == "span"]


def test_live_migration_emits_expected_spans(traced_migration):
    _, records = traced_migration
    names = {r.name for r in records}
    assert {"runtime.migrate", "connect", "announce", "round", "complete",
            "close", "daemon.session", "daemon.announce",
            "daemon.round"} <= names
    migrate = next(r for r in records if r.name == "runtime.migrate")
    child_names = [r.name for r in _children_of(records, migrate.span_id)]
    for expected in ("connect", "announce", "round", "complete", "close"):
        assert expected in child_names
    assert migrate.attrs["outcome"] == "completed"
    assert migrate.attrs["vm"] == "vm"
    # source and daemon run as distinct asyncio tasks -> distinct lanes
    daemon_session = next(r for r in records if r.name == "daemon.session")
    assert daemon_session.task != migrate.task


def test_child_span_durations_match_wall_time_within_1_percent(traced_migration):
    metrics, records = traced_migration
    migrate = next(r for r in records if r.name == "runtime.migrate")
    summed = sum(r.duration_s for r in _children_of(records, migrate.span_id))
    assert metrics.wall_time_s > 0
    assert summed == pytest.approx(metrics.wall_time_s, rel=0.01), (
        f"child spans sum to {summed:.6f}s but the migration measured "
        f"{metrics.wall_time_s:.6f}s"
    )


def test_retry_span_recorded_on_disconnect():
    tracer = get_tracer()
    tracer.enable()
    metrics = asyncio.run(
        _migrate_traced(daemon_setup=lambda d: d.inject_disconnect(10))
    )
    assert metrics.retries >= 1
    records = tracer.finished()
    retries = [r for r in records if r.name == "retry"]
    assert retries, "no retry span despite a mid-transfer disconnect"
    assert retries[0].attrs["attempt"] == 1
    migrate = next(r for r in records if r.name == "runtime.migrate")
    assert retries[0].parent_id == migrate.span_id
    # the reconnect produced a second connect span under the same parent
    connects = [r for r in _children_of(records, migrate.span_id)
                if r.name == "connect"]
    assert len(connects) >= 2


def test_runtime_metrics_folded_into_registry(traced_migration):
    metrics, _ = traced_migration
    snapshot = get_registry().snapshot()
    assert snapshot["runtime.migrations.completed"]["value"] == 1
    counted = sum(
        snapshot[f"runtime.bytes.{kind}"]["value"]
        for kind in metrics.bytes_by_type
    )
    assert counted == metrics.payload_bytes
    assert snapshot["runtime.round_seconds"]["total"] == metrics.num_rounds
    assert snapshot["daemon.sessions.completed"]["value"] == 1


def test_chrome_export_of_live_migration_is_wellformed(traced_migration):
    _, records = traced_migration
    trace = json.loads(json.dumps(to_chrome_trace(records, get_registry())))
    events = trace["traceEvents"]
    spans = [e for e in events if e["ph"] == "X"]
    assert spans, "no complete events exported"
    for event in spans:
        assert event["dur"] >= 0
        assert event["ts"] >= 0
        assert isinstance(event["pid"], int) and isinstance(event["tid"], int)
    lanes = {e["args"]["name"] for e in events if e["ph"] == "M"
             and e["name"] == "thread_name"}
    assert len(lanes) >= 2  # source task and daemon task
