"""Isolation for the process-global tracer and metrics registry."""

from __future__ import annotations

import pytest

from repro.obs import get_registry, get_tracer


@pytest.fixture(autouse=True)
def clean_obs():
    """Start every test with a disabled, empty tracer and registry."""
    tracer = get_tracer()
    tracer.disable()
    tracer.reset()
    get_registry().reset()
    yield
    tracer.disable()
    tracer.reset()
    get_registry().reset()
