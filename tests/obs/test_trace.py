"""Tracer core: nesting, task isolation, lifecycle, env toggle."""

from __future__ import annotations

import asyncio

import pytest

from repro.obs import NOOP_SPAN, get_tracer, span
from repro.obs.trace import Tracer, configure_from_env


def _by_name(records):
    index = {}
    for record in records:
        index.setdefault(record.name, []).append(record)
    return index


def test_disabled_span_is_noop_singleton():
    tracer = get_tracer()
    assert not tracer.enabled
    sp = span("anything", vm="x")
    assert sp is NOOP_SPAN
    with sp as inner:
        inner.set(ignored=1).add_modelled(5.0)
    assert inner.duration_s == 0.0
    assert tracer.finished() == []


def test_nested_spans_record_parentage():
    tracer = get_tracer()
    tracer.enable()
    with span("outer", vm="a") as outer:
        with span("middle") as middle:
            with span("inner") as inner:
                pass
        with span("sibling") as sibling:
            pass
    records = _by_name(tracer.finished())
    assert set(records) == {"outer", "middle", "inner", "sibling"}
    outer_id = records["outer"][0].span_id
    assert records["outer"][0].parent_id == 0
    assert records["middle"][0].parent_id == outer_id
    assert records["sibling"][0].parent_id == outer_id
    assert records["inner"][0].parent_id == records["middle"][0].span_id
    # completion order: innermost exits first
    names = [r.name for r in tracer.finished()]
    assert names == ["inner", "middle", "sibling", "outer"]
    assert outer.duration_s >= middle.duration_s >= 0.0
    assert inner is not NOOP_SPAN and sibling is not NOOP_SPAN


def test_span_attributes_and_modelled_clock():
    tracer = get_tracer()
    tracer.enable()
    with span("work", vm="vm0") as sp:
        sp.set(pages=10).add_modelled(1.5).add_modelled(0.5)
    record = tracer.finished()[0]
    assert record.attrs == {"vm": "vm0", "pages": 10}
    assert record.modelled_s == pytest.approx(2.0)
    assert record.duration_s >= 0.0
    assert record.kind == "span"


def test_exception_annotates_error_and_still_records():
    tracer = get_tracer()
    tracer.enable()
    with pytest.raises(ValueError):
        with span("failing"):
            raise ValueError("boom")
    record = tracer.finished()[0]
    assert record.attrs["error"] == "ValueError"
    # a new root opens cleanly after the failed span unwound
    with span("after") as sp:
        pass
    assert sp.record.parent_id == 0


def test_event_records_instant_under_current_span():
    tracer = get_tracer()
    tracer.enable()
    with span("outer"):
        tracer.event("mark", value=3)
    records = _by_name(tracer.finished())
    mark = records["mark"][0]
    assert mark.kind == "instant"
    assert mark.duration_s == 0.0
    assert mark.parent_id == records["outer"][0].span_id
    assert mark.attrs == {"value": 3}


def test_contextvar_isolation_under_asyncio_gather():
    tracer = get_tracer()
    tracer.enable()

    async def worker(label: str) -> None:
        with span(f"root.{label}"):
            await asyncio.sleep(0)
            with span(f"child.{label}"):
                await asyncio.sleep(0)

    async def main() -> None:
        await asyncio.gather(
            asyncio.create_task(worker("a"), name="task-a"),
            asyncio.create_task(worker("b"), name="task-b"),
        )

    asyncio.run(main())
    records = _by_name(tracer.finished())
    for label in ("a", "b"):
        root = records[f"root.{label}"][0]
        child = records[f"child.{label}"][0]
        assert root.parent_id == 0
        assert child.parent_id == root.span_id
        assert root.task == f"task-{label}"
        assert child.task == root.task


def test_reset_clears_records_and_restarts_ids():
    tracer = Tracer(enabled=True)
    with tracer.span("one"):
        pass
    assert tracer.finished()
    first_id = tracer.finished()[0].span_id
    tracer.reset()
    assert tracer.finished() == []
    with tracer.span("two"):
        pass
    assert tracer.finished()[0].span_id == first_id


@pytest.mark.parametrize("raw", ["", "0", "false", "off", "no"])
def test_configure_from_env_falsy_keeps_disabled(raw):
    assert configure_from_env({"REPRO_TRACE": raw}) is None
    assert not get_tracer().enabled


@pytest.mark.parametrize("raw", ["1", "true", "YES", "on"])
def test_configure_from_env_truthy_enables(raw):
    assert configure_from_env({"REPRO_TRACE": raw}) is None
    assert get_tracer().enabled


def test_configure_from_env_path_enables_and_returns_path(tmp_path):
    path = str(tmp_path / "run.jsonl")
    assert configure_from_env({"REPRO_TRACE": path}) == path
    assert get_tracer().enabled
