"""Metrics registry: counters, gauges, fixed-bucket histograms."""

from __future__ import annotations

import pytest

from repro.obs import (
    PAGE_BYTES_BUCKETS,
    ROUND_SECONDS_BUCKETS,
    get_registry,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_accumulates_and_rejects_negative():
    counter = Counter("c")
    counter.add()
    counter.add(2.5)
    assert counter.value == pytest.approx(3.5)
    with pytest.raises(ValueError):
        counter.add(-1)
    assert counter.snapshot() == {"type": "counter", "value": 3.5}


def test_gauge_set_and_add():
    gauge = Gauge("g")
    gauge.set(10)
    gauge.add(-3)
    assert gauge.value == 7
    assert gauge.snapshot()["type"] == "gauge"


def test_histogram_bucket_placement():
    hist = Histogram("h", boundaries=(10.0, 100.0))
    for value in (1, 10, 11, 100, 1000):
        hist.observe(value)
    # bisect_left: boundaries are inclusive upper edges
    assert hist.counts == [2, 2, 1]
    assert hist.total == 5
    assert hist.min == 1 and hist.max == 1000
    assert hist.mean == pytest.approx(1122 / 5)
    snap = hist.snapshot()
    assert snap["boundaries"] == [10.0, 100.0]
    assert snap["counts"] == [2, 2, 1]


def test_histogram_rejects_bad_boundaries():
    with pytest.raises(ValueError):
        Histogram("h", boundaries=())
    with pytest.raises(ValueError):
        Histogram("h", boundaries=(2.0, 1.0))


def test_empty_histogram_snapshot_has_null_extremes():
    snap = Histogram("h", boundaries=(1.0,)).snapshot()
    assert snap["total"] == 0
    assert snap["min"] is None and snap["max"] is None
    assert snap["mean"] == 0.0


def test_registry_get_or_create_returns_same_instrument():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("b") is registry.gauge("b")
    assert registry.histogram("c") is registry.histogram("c")
    assert registry.names() == ("a", "b", "c")


def test_registry_type_mismatch_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")
    with pytest.raises(TypeError):
        registry.histogram("x")


def test_registry_snapshot_and_reset():
    registry = MetricsRegistry()
    registry.counter("migrations").add(2)
    registry.histogram("sizes", PAGE_BYTES_BUCKETS).observe(4096)
    snap = registry.snapshot()
    assert snap["migrations"]["value"] == 2
    assert snap["sizes"]["total"] == 1
    registry.reset()
    assert registry.names() == ()


def test_default_histogram_boundaries_are_round_seconds():
    registry = MetricsRegistry()
    hist = registry.histogram("durations")
    assert hist.boundaries == ROUND_SECONDS_BUCKETS


def test_shared_default_registry_identity():
    assert get_registry() is get_registry()


def test_bucket_presets_strictly_increase():
    for preset in (PAGE_BYTES_BUCKETS, ROUND_SECONDS_BUCKETS):
        assert all(a < b for a, b in zip(preset, preset[1:]))
