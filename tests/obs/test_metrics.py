"""Metrics registry: counters, gauges, fixed-bucket histograms."""

from __future__ import annotations

import pytest

from repro.obs import (
    PAGE_BYTES_BUCKETS,
    ROUND_SECONDS_BUCKETS,
    get_registry,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    quantile_from_state,
)


def test_counter_accumulates_and_rejects_negative():
    counter = Counter("c")
    counter.add()
    counter.add(2.5)
    assert counter.value == pytest.approx(3.5)
    with pytest.raises(ValueError):
        counter.add(-1)
    assert counter.snapshot() == {"type": "counter", "value": 3.5}


def test_gauge_set_and_add():
    gauge = Gauge("g")
    gauge.set(10)
    gauge.add(-3)
    assert gauge.value == 7
    assert gauge.snapshot()["type"] == "gauge"


def test_histogram_bucket_placement():
    hist = Histogram("h", boundaries=(10.0, 100.0))
    for value in (1, 10, 11, 100, 1000):
        hist.observe(value)
    # bisect_left: boundaries are inclusive upper edges
    assert hist.counts == [2, 2, 1]
    assert hist.total == 5
    assert hist.min == 1 and hist.max == 1000
    assert hist.mean == pytest.approx(1122 / 5)
    snap = hist.snapshot()
    assert snap["boundaries"] == [10.0, 100.0]
    assert snap["counts"] == [2, 2, 1]


def test_histogram_rejects_bad_boundaries():
    with pytest.raises(ValueError):
        Histogram("h", boundaries=())
    with pytest.raises(ValueError):
        Histogram("h", boundaries=(2.0, 1.0))


def test_empty_histogram_snapshot_has_null_extremes():
    snap = Histogram("h", boundaries=(1.0,)).snapshot()
    assert snap["total"] == 0
    assert snap["min"] is None and snap["max"] is None
    assert snap["mean"] == 0.0


def test_registry_get_or_create_returns_same_instrument():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("b") is registry.gauge("b")
    assert registry.histogram("c") is registry.histogram("c")
    assert registry.names() == ("a", "b", "c")


def test_registry_type_mismatch_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")
    with pytest.raises(TypeError):
        registry.histogram("x")


def test_registry_snapshot_and_reset():
    registry = MetricsRegistry()
    registry.counter("migrations").add(2)
    registry.histogram("sizes", PAGE_BYTES_BUCKETS).observe(4096)
    snap = registry.snapshot()
    assert snap["migrations"]["value"] == 2
    assert snap["sizes"]["total"] == 1
    registry.reset()
    assert registry.names() == ()


def test_default_histogram_boundaries_are_round_seconds():
    registry = MetricsRegistry()
    hist = registry.histogram("durations")
    assert hist.boundaries == ROUND_SECONDS_BUCKETS


def test_shared_default_registry_identity():
    assert get_registry() is get_registry()


def test_bucket_presets_strictly_increase():
    for preset in (PAGE_BYTES_BUCKETS, ROUND_SECONDS_BUCKETS):
        assert all(a < b for a, b in zip(preset, preset[1:]))


class TestHistogramQuantile:
    """Linear-interpolation quantiles checked against known distributions."""

    def uniform_1_to_100(self) -> Histogram:
        hist = Histogram(
            "h", boundaries=tuple(float(b) for b in range(10, 100, 10))
        )
        for value in range(1, 101):
            hist.observe(value)
        return hist

    def test_uniform_distribution_recovers_percentiles(self):
        hist = self.uniform_1_to_100()
        assert hist.quantile(0.5) == pytest.approx(50.0)
        assert hist.quantile(0.9) == pytest.approx(90.0)
        assert hist.quantile(0.25) == pytest.approx(25.0, abs=1.0)

    def test_q0_is_observed_min_and_q1_observed_max(self):
        hist = self.uniform_1_to_100()
        assert hist.quantile(0.0) == 1.0
        assert hist.quantile(1.0) == 100.0

    def test_observed_extremes_tighten_open_ended_buckets(self):
        # Everything lands in the overflow bucket; without min/max the
        # estimate would be unbounded.
        hist = Histogram("h", boundaries=(1.0,))
        hist.observe(500.0)
        hist.observe(600.0)
        assert hist.quantile(0.0) == 500.0
        assert hist.quantile(1.0) == 600.0
        assert 500.0 <= hist.quantile(0.5) <= 600.0

    def test_result_clamped_to_observed_range(self):
        # Two samples close together in one wide bucket: interpolation
        # inside (5, 100) must never escape the observed [5, 7] range.
        hist = Histogram("h", boundaries=(100.0,))
        hist.observe(5.0)
        hist.observe(7.0)
        for q in (0.1, 0.5, 0.9):
            assert 5.0 <= hist.quantile(q) <= 7.0

    def test_empty_histogram_quantile_is_zero(self):
        assert Histogram("h", boundaries=(1.0,)).quantile(0.5) == 0.0

    def test_out_of_range_q_raises(self):
        hist = self.uniform_1_to_100()
        with pytest.raises(ValueError, match="outside"):
            hist.quantile(-0.1)
        with pytest.raises(ValueError, match="outside"):
            hist.quantile(1.5)

    def test_quantile_from_state_matches_live_instrument(self):
        hist = self.uniform_1_to_100()
        state = hist.snapshot()
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert quantile_from_state(state, q) == pytest.approx(
                hist.quantile(q)
            )

    def test_quantile_from_state_rejects_non_histograms(self):
        assert quantile_from_state({}, 0.5) == 0.0
        assert quantile_from_state({"type": "counter", "value": 3}, 0.5) == 0.0
        assert (
            quantile_from_state(
                {"type": "histogram", "total": 0, "boundaries": [1.0],
                 "counts": [0, 0], "min": None, "max": None},
                0.5,
            )
            == 0.0
        )
