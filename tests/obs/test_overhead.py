"""Regression gate: the disabled tracer must stay near-free.

The contract in :mod:`repro.obs.trace`: with tracing off, ``span()``
returns a preallocated no-op, so instrumented hot loops pay only a
function call and a truth test.  This test measures that cost directly
against the real work it decorates — ``compute_transfer_set`` over a
10k-page VM — and fails if the instrumentation overhead exceeds 5% of
the work it wraps.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.checkpoint import ChecksumIndex
from repro.core.fingerprint import Fingerprint
from repro.core.transfer import Method, compute_transfer_set
from repro.obs import NOOP_SPAN, get_tracer, span

NUM_PAGES = 10_000
REPEATS = 30


def _fixture_pair():
    rng = np.random.default_rng(3)
    checkpoint = rng.integers(1, 2**62, size=NUM_PAGES, dtype=np.uint64)
    current = checkpoint.copy()
    dirty = rng.choice(NUM_PAGES, size=NUM_PAGES // 20, replace=False)
    current[dirty] = rng.integers(2**62, 2**63, size=dirty.size, dtype=np.uint64)
    current_fp = Fingerprint(hashes=current)
    checkpoint_fp = Fingerprint(hashes=checkpoint)
    return current_fp, checkpoint_fp, ChecksumIndex(checkpoint_fp)


def _time(fn, repeats=REPEATS) -> float:
    best = float("inf")
    for _ in range(3):  # best-of-3 to shed scheduler noise
        start = time.perf_counter()
        for _ in range(repeats):
            fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_tracer_overhead_under_5_percent():
    tracer = get_tracer()
    assert not tracer.enabled
    current, checkpoint, index = _fixture_pair()

    def work():
        compute_transfer_set(
            Method.HASHES_DEDUP, current, checkpoint, checkpoint_index=index
        )

    def instrumentation_only():
        # exactly what one disabled instrumented call adds on top
        with span("engine.transfer_set"):
            pass

    work_time = _time(work)
    overhead_time = _time(instrumentation_only)
    assert tracer.finished() == []  # nothing recorded while disabled
    assert overhead_time <= 0.05 * work_time, (
        f"disabled span cost {overhead_time * 1e6 / REPEATS:.2f}us/call vs "
        f"work {work_time * 1e6 / REPEATS:.2f}us/call "
        f"({overhead_time / work_time * 100:.2f}% > 5%)"
    )


def test_disabled_span_allocates_nothing():
    tracer = get_tracer()
    assert not tracer.enabled
    spans = {id(span("a")) for _ in range(100)}
    assert spans == {id(NOOP_SPAN)}


def test_enabled_tracer_records_transfer_set_span():
    tracer = get_tracer()
    tracer.enable()
    current, checkpoint, index = _fixture_pair()
    result = compute_transfer_set(
        Method.HASHES_DEDUP, current, checkpoint, checkpoint_index=index
    )
    records = [r for r in tracer.finished() if r.name == "engine.transfer_set"]
    assert len(records) == 1
    attrs = records[0].attrs
    assert attrs["method"] == "hashes+dedup"
    assert attrs["slots"] == NUM_PAGES
    assert attrs["full"] == result.full_pages
    assert records[0].duration_s >= 0.0
