"""The curses-free terminal dashboard renderer."""

from __future__ import annotations

import json
import threading

from repro.obs.prometheus import MetricsServer
from repro.obs.top import (
    fetch_view,
    format_bytes,
    format_seconds,
    render_dashboard,
)

VIEW = {
    "controller": "ctl",
    "hosts": [
        {
            "host": "host-a",
            "seq": 12,
            "age_s": 0.5,
            "sessions_completed": 3.0,
            "recycled_bytes": 11853824.0,
            "transferred_bytes": 4935504.0,
            "recycle_ratio": 0.706,
        },
        {
            "host": "host-b",
            "seq": 11,
            "age_s": None,
            "sessions_completed": 1.0,
            "recycled_bytes": 0.0,
            "transferred_bytes": 1024.0,
            "recycle_ratio": 0.0,
        },
    ],
    "cluster": {
        "recycled_bytes": 11853824.0,
        "transferred_bytes": 4936528.0,
        "recycle_ratio": 0.706,
        "active_migrations": 1.0,
        "migrations_completed": 4.0,
        "migrations_failed": 0.0,
        "downtime_p50_s": 0.004,
        "downtime_p99_s": 0.031,
        "downtime_count": 4,
    },
    "per_vm": {
        "vdi-vm": {
            "recycled_bytes": 11853824.0,
            "transferred_bytes": 4936528.0,
            "sessions_completed": 4.0,
        }
    },
    "health": {"polls": 12, "poll_failures": 0, "restarts": 1, "seq_gaps": 0},
}


class TestFormatters:
    def test_format_bytes_units(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.0 KiB"
        assert format_bytes(11853824) == "11.3 MiB"
        assert format_bytes(3 * 2**30) == "3.0 GiB"
        assert format_bytes(5 * 2**40) == "5.0 TiB"

    def test_format_seconds_scales(self):
        assert format_seconds(2.5) == "2.50s"
        assert format_seconds(0.004) == "4.0ms"
        assert format_seconds(0.000031) == "31us"


class TestRenderDashboard:
    def test_frame_carries_every_headline_number(self):
        frame = render_dashboard(VIEW)
        assert "vecycle top — controller ctl — 2 host(s)" in frame
        assert "recycled 11.3 MiB (saved)" in frame
        assert "recycle ratio 70.6%" in frame
        assert "active 1 | completed 4 | failed 0" in frame
        assert "p50 4.0ms" in frame and "p99 31.0ms" in frame
        assert "restarts 1" in frame

    def test_host_table_rows_align(self):
        frame = render_dashboard(VIEW)
        lines = frame.splitlines()
        header = next(line for line in lines if line.startswith("HOST"))
        row_a = next(line for line in lines if line.startswith("host-a"))
        assert header.index("RECYCLED") == row_a.index("11.3 MiB")
        # A host never successfully polled shows "-" for age.
        row_b = next(line for line in lines if line.startswith("host-b"))
        assert "-" in row_b

    def test_vm_table_present(self):
        frame = render_dashboard(VIEW)
        assert "VM" in frame
        assert "vdi-vm" in frame

    def test_empty_view_renders_placeholder(self):
        frame = render_dashboard({})
        assert "(no host telemetry yet)" in frame
        assert "0 host(s)" in frame


class TestFetchView:
    def test_fetch_normalizes_url_variants(self):
        server = MetricsServer(
            render_text=lambda: "",
            render_json=lambda: {"controller": "ctl", "thread": threading.current_thread().name},
            port=0,
        ).start()
        try:
            base = f"http://127.0.0.1:{server.port}"
            for url in (base, base + "/", base + "/metrics",
                        base + "/metrics.json"):
                view = fetch_view(url)
                assert view["controller"] == "ctl"
        finally:
            server.stop()

    def test_view_is_json_roundtrippable(self):
        # The dashboard view must survive the HTTP JSON hop losslessly.
        assert json.loads(json.dumps(VIEW)) == VIEW
