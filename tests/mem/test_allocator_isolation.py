"""Regression tests for the content-id allocator's fork-aliasing guard.

The hazard (documented in :mod:`repro.mem.image`): a forked worker
inherits the parent's process-global allocator position, so two sibling
workers hand out the SAME ids for DIFFERENT content — merging their
fingerprints then manufactures phantom content matches.  The guard is
:func:`repro.mem.image.isolate_worker_allocator`, which
``repro.parallel``'s pool initializer calls with the worker pid.
"""

import numpy as np
import pytest

from repro.mem.image import (
    _GLOBAL_NEXT_ID,
    MemoryImage,
    isolate_worker_allocator,
)


@pytest.fixture()
def restore_global_allocator():
    saved = _GLOBAL_NEXT_ID[0]
    yield
    _GLOBAL_NEXT_ID[0] = saved


def _simulate_forked_worker(inherited_position, worker_key, isolate):
    """Replay what a forked child does: inherit, (maybe) isolate, allocate."""
    _GLOBAL_NEXT_ID[0] = inherited_position
    if isolate:
        isolate_worker_allocator(worker_key)
    image = MemoryImage(8)
    image.write_fresh(np.arange(8))
    return set(image.slots.tolist())


class TestForkAliasing:
    def test_unguarded_fork_aliases_ids(self, restore_global_allocator):
        # Demonstrate the hazard itself: two "children" starting from the
        # same inherited counter hand out identical ids for different
        # content.  This is the failure mode the guard exists for.
        inherited = _GLOBAL_NEXT_ID[0]
        a = _simulate_forked_worker(inherited, worker_key=101, isolate=False)
        b = _simulate_forked_worker(inherited, worker_key=202, isolate=False)
        assert a == b  # phantom matches: same ids, different content

    def test_isolated_workers_allocate_disjoint_ids(self, restore_global_allocator):
        inherited = _GLOBAL_NEXT_ID[0]
        a = _simulate_forked_worker(inherited, worker_key=101, isolate=True)
        b = _simulate_forked_worker(inherited, worker_key=202, isolate=True)
        assert not (a & b)

    def test_isolated_range_disjoint_from_parent(self, restore_global_allocator):
        parent = MemoryImage(8)
        parent.write_fresh(np.arange(8))
        parent_ids = set(parent.slots.tolist())
        child_ids = _simulate_forked_worker(
            _GLOBAL_NEXT_ID[0], worker_key=77, isolate=True
        )
        assert not (parent_ids & child_ids)

    def test_isolated_range_disjoint_from_namespaces(self, restore_global_allocator):
        isolate_worker_allocator(worker_key=12345)
        worker = MemoryImage(8)
        worker.write_fresh(np.arange(8))
        namespaced = MemoryImage(8, namespace=12345)
        namespaced.write_fresh(np.arange(8))
        assert not (set(worker.slots.tolist()) & set(namespaced.slots.tolist()))

    def test_isolation_sets_high_bit(self, restore_global_allocator):
        isolate_worker_allocator(worker_key=1)
        image = MemoryImage(1)
        image.write_fresh(np.asarray([0]))
        assert int(image.slots[0]) >> 63 == 1


class TestNamespacedImages:
    def test_same_namespace_same_writes_identical(self):
        a = MemoryImage(16, namespace=9)
        b = MemoryImage(16, namespace=9)
        a.write_fresh(np.arange(16))
        b.write_fresh(np.arange(16))
        assert (a.slots == b.slots).all()

    def test_different_namespaces_disjoint(self):
        a = MemoryImage(16, namespace=9)
        b = MemoryImage(16, namespace=10)
        a.write_fresh(np.arange(16))
        b.write_fresh(np.arange(16))
        assert not (set(a.slots.tolist()) & set(b.slots.tolist()))
