"""Unit tests for repro.mem.mutation."""

import numpy as np
import pytest

from repro.core.fingerprint import ZERO_HASH
from repro.mem.image import MemoryImage
from repro.mem.mutation import (
    boot_populate,
    churn,
    fill_ramdisk,
    update_region_fraction,
)


class TestFillRamdisk:
    def test_fills_leading_fraction(self):
        image = MemoryImage(100)
        region = fill_ramdisk(image, fraction=0.9)
        assert len(region) == 90
        assert (image.slots[:90] != ZERO_HASH).all()
        assert (image.slots[90:] == ZERO_HASH).all()

    def test_content_is_unique_like_random_data(self):
        image = MemoryImage(100)
        region = fill_ramdisk(image, fraction=0.5)
        assert len(np.unique(image.slots[region])) == len(region)

    def test_invalid_fraction(self):
        image = MemoryImage(10)
        with pytest.raises(ValueError):
            fill_ramdisk(image, fraction=0.0)
        with pytest.raises(ValueError):
            fill_ramdisk(image, fraction=1.5)


class TestUpdateRegion:
    def test_updates_exact_fraction(self, rng):
        image = MemoryImage(200)
        region = fill_ramdisk(image, fraction=1.0)
        before = image.slots.copy()
        updated = update_region_fraction(image, region, 0.25, rng)
        assert len(updated) == 50
        changed = np.nonzero(image.slots != before)[0]
        assert set(changed.tolist()) == set(updated.tolist())

    def test_zero_and_full_updates(self, rng):
        image = MemoryImage(40)
        region = fill_ramdisk(image, fraction=1.0)
        assert len(update_region_fraction(image, region, 0.0, rng)) == 0
        assert len(update_region_fraction(image, region, 1.0, rng)) == 40

    def test_updates_stay_in_region(self, rng):
        image = MemoryImage(100)
        region = fill_ramdisk(image, fraction=0.5)
        outside_before = image.slots[50:].copy()
        update_region_fraction(image, region, 1.0, rng)
        assert (image.slots[50:] == outside_before).all()

    def test_invalid_fraction(self, rng):
        image = MemoryImage(10)
        with pytest.raises(ValueError):
            update_region_fraction(image, np.arange(10), -0.1, rng)


class TestChurn:
    def test_fresh_writes_change_slots(self, rng):
        image = MemoryImage(64, zero_filled=False)
        before = image.slots.copy()
        churn(image, rng, fresh_writes=16)
        assert np.count_nonzero(image.slots != before) == 16

    def test_duplicate_writes_increase_duplicates(self, rng):
        image = MemoryImage(64, zero_filled=False)
        churn(image, rng, duplicate_writes=20)
        fingerprint = image.fingerprint()
        assert fingerprint.duplicate_fraction() > 0

    def test_zeroed_pages(self, rng):
        image = MemoryImage(64, zero_filled=False)
        churn(image, rng, zeroed=8)
        assert image.fingerprint().zero_fraction() >= 8 / 64

    def test_relocation_preserves_unique_set(self, rng):
        image = MemoryImage(64, zero_filled=False)
        before = set(np.unique(image.slots).tolist())
        churn(image, rng, relocated=32)
        assert set(np.unique(image.slots).tolist()) == before

    def test_hot_slot_restriction(self, rng):
        image = MemoryImage(64, zero_filled=False)
        hot = np.arange(8)
        before = image.slots.copy()
        churn(image, rng, fresh_writes=8, hot_slots=hot)
        changed = np.nonzero(image.slots != before)[0]
        assert set(changed.tolist()) <= set(hot.tolist())


class TestBootPopulate:
    def test_fractions_roughly_met(self, rng):
        image = MemoryImage(2000)
        boot_populate(
            image, rng, used_fraction=0.9, duplicate_fraction=0.1, zero_fraction=0.05
        )
        fingerprint = image.fingerprint()
        # Unused slots stay zero, so the zero fraction is 1 - used.
        assert fingerprint.zero_fraction() == pytest.approx(0.10, abs=0.03)
        # Zero pages are themselves duplicates (Figure 4's point), so
        # the duplicate fraction ≈ zero fraction + requested duplicates.
        assert fingerprint.duplicate_fraction() == pytest.approx(0.20, abs=0.06)

    def test_invalid_used_fraction(self, rng):
        with pytest.raises(ValueError):
            boot_populate(
                MemoryImage(10), rng, used_fraction=0.0,
                duplicate_fraction=0.1, zero_fraction=0.05,
            )

    def test_full_usage_allowed(self, rng):
        image = MemoryImage(100)
        boot_populate(
            image, rng, used_fraction=1.0, duplicate_fraction=0.0, zero_fraction=0.0
        )
        assert image.fingerprint().zero_fraction() == 0.0
