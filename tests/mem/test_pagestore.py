"""Unit tests for repro.mem.pagestore."""

import numpy as np
import pytest

from repro.core.checksum import MD5, PAGE_SIZE
from repro.mem.pagestore import ContentAddressedStore, PageStore
from repro.obs.metrics import get_registry
from repro.storage.repository import CheckpointRepository


class TestPageBytes:
    def test_page_size(self):
        store = PageStore()
        assert len(store.page_bytes(1)) == PAGE_SIZE

    def test_deterministic(self):
        assert PageStore().page_bytes(42) == PageStore().page_bytes(42)

    def test_distinct_ids_distinct_pages(self):
        store = PageStore()
        assert store.page_bytes(1) != store.page_bytes(2)

    def test_zero_id_is_zero_page(self):
        assert PageStore().page_bytes(0) == bytes(PAGE_SIZE)

    def test_custom_page_size(self):
        store = PageStore(page_size=128)
        assert len(store.page_bytes(5)) == 128

    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            PageStore(page_size=0)

    def test_cache_bounded(self):
        store = PageStore(cache_limit=4)
        for content_id in range(20):
            store.page_bytes(content_id + 1)
        assert len(store._cache) <= 4

    def test_cached_value_reused(self):
        store = PageStore()
        first = store.page_bytes(9)
        assert store.page_bytes(9) is first


class TestMaterialize:
    def test_materialize_concatenates(self):
        store = PageStore(page_size=64)
        slots = np.asarray([1, 0, 2], dtype=np.uint64)
        blob = store.materialize(slots)
        assert len(blob) == 3 * 64
        assert blob[:64] == store.page_bytes(1)
        assert blob[64:128] == bytes(64)
        assert blob[128:] == store.page_bytes(2)


class TestLruEviction:
    def test_evicts_one_at_a_time(self):
        store = PageStore(cache_limit=4)
        for content_id in range(1, 5):
            store.page_bytes(content_id)
        store.page_bytes(5)
        # Exactly the oldest entry left, not a wholesale flush.
        assert len(store._cache) == 4
        assert 1 not in store._cache
        assert {2, 3, 4, 5} <= set(store._cache)

    def test_recently_used_survives(self):
        store = PageStore(cache_limit=4)
        for content_id in range(1, 5):
            store.page_bytes(content_id)
        store.page_bytes(1)  # refresh 1 → 2 becomes the LRU victim
        store.page_bytes(5)
        assert 1 in store._cache
        assert 2 not in store._cache

    def test_page_eviction_counter_increments(self):
        registry = get_registry()
        counter = registry.counter("pagestore.page_evictions")
        before = counter.value
        store = PageStore(cache_limit=2)
        for content_id in range(1, 6):
            store.page_bytes(content_id)
        assert counter.value == before + 3

    def test_digest_cache_bounded_with_counter(self):
        registry = get_registry()
        counter = registry.counter("pagestore.digest_evictions")
        before = counter.value
        store = PageStore(cache_limit=4)
        store._digest_limit = 3  # shrink for the test; default is 64Ki
        for content_id in range(1, 8):
            store.digest_for(content_id)
        assert len(store._digest_cache) <= 3
        assert counter.value > before


def _page(tag: bytes) -> bytes:
    return (tag * 64)[:64]


def _digest(tag: bytes) -> bytes:
    return MD5.digest(_page(tag))


class TestContentAddressedStore:
    def test_put_get_dedup(self):
        store = ContentAddressedStore()
        assert store.put(_digest(b"a"), _page(b"a")) is True
        assert store.put(_digest(b"a"), _page(b"a")) is False
        assert store.get(_digest(b"a")) == _page(b"a")
        assert store.get(_digest(b"b")) is None
        assert len(store) == 1

    def test_stored_bytes_is_a_running_total(self):
        store = ContentAddressedStore()
        for tag in (b"a", b"b", b"c"):
            store.put(_digest(tag), _page(tag))
            store.retain(_digest(tag))
        assert store.stored_bytes == 3 * 64
        store.release(_digest(b"a"))
        assert store.stored_bytes == 2 * 64

    def test_release_evicts_only_at_last_reference(self):
        store = ContentAddressedStore()
        store.put(_digest(b"x"), _page(b"x"))
        store.retain(_digest(b"x"))
        store.retain(_digest(b"x"))
        assert store.refcount(_digest(b"x")) == 2
        assert store.release(_digest(b"x")) == 0  # one owner remains
        assert _digest(b"x") in store
        assert store.release(_digest(b"x")) == 64  # last owner gone
        assert _digest(b"x") not in store
        assert store.stored_bytes == 0

    def test_retain_release_many_skip_none_slots(self):
        store = ContentAddressedStore()
        store.put(_digest(b"a"), _page(b"a"))
        digests = [_digest(b"a"), None, _digest(b"a")]
        store.retain_many(digests)
        assert store.refcount(_digest(b"a")) == 2
        assert store.release_many(digests) == 64

    def test_sweep_evicts_unreferenced_only(self):
        store = ContentAddressedStore()
        store.put(_digest(b"kept"), _page(b"kept"))
        store.retain(_digest(b"kept"))
        store.put(_digest(b"loose"), _page(b"loose"))
        assert store.sweep_unreferenced() == 64
        assert _digest(b"kept") in store
        assert _digest(b"loose") not in store

    def test_put_writes_through_to_repository(self, tmp_path):
        repo = CheckpointRepository(tmp_path, fsync=False)
        store = ContentAddressedStore(repository=repo)
        store.put(_digest(b"d"), _page(b"d"))
        # Durable before any manifest referencing it could commit.
        assert repo.get_page(_digest(b"d")) == _page(b"d")

    def test_get_faults_released_page_back_in_from_repository(self, tmp_path):
        repo = CheckpointRepository(tmp_path, fsync=False)
        repo.put_page(_digest(b"s"), _page(b"s"))
        repo._refcounts[_digest(b"s")] = 1  # keep the segment alive
        store = ContentAddressedStore(repository=repo)
        assert store.stored_bytes == 0  # not resident
        assert _digest(b"s") in store  # but reachable
        assert store.get(_digest(b"s")) == _page(b"s")  # spill/load
        assert store.stored_bytes == 64  # resident again


class TestDigests:
    def test_digest_matches_direct_hash(self):
        store = PageStore()
        assert store.digest_for(7) == MD5.digest(store.page_bytes(7))

    def test_digests_for_matches_per_id(self):
        store = PageStore()
        ids = np.asarray([3, 1, 3, 2, 1, 0], dtype=np.uint64)
        batched = store.digests_for(ids)
        assert batched == [store.digest_for(int(cid)) for cid in ids]

    def test_digests_for_computes_each_distinct_once(self):
        store = PageStore(cache_limit=16)
        ids = np.asarray([5, 5, 5, 6, 6], dtype=np.uint64)
        store.digests_for(ids)
        # Only the distinct ids were materialized.
        assert set(store._cache) == {5, 6}

    def test_digests_for_empty(self):
        assert PageStore().digests_for(np.asarray([], dtype=np.uint64)) == []
