"""Unit tests for repro.mem.pagestore."""

import numpy as np
import pytest

from repro.core.checksum import MD5, PAGE_SIZE
from repro.mem.pagestore import PageStore
from repro.obs.metrics import get_registry


class TestPageBytes:
    def test_page_size(self):
        store = PageStore()
        assert len(store.page_bytes(1)) == PAGE_SIZE

    def test_deterministic(self):
        assert PageStore().page_bytes(42) == PageStore().page_bytes(42)

    def test_distinct_ids_distinct_pages(self):
        store = PageStore()
        assert store.page_bytes(1) != store.page_bytes(2)

    def test_zero_id_is_zero_page(self):
        assert PageStore().page_bytes(0) == bytes(PAGE_SIZE)

    def test_custom_page_size(self):
        store = PageStore(page_size=128)
        assert len(store.page_bytes(5)) == 128

    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            PageStore(page_size=0)

    def test_cache_bounded(self):
        store = PageStore(cache_limit=4)
        for content_id in range(20):
            store.page_bytes(content_id + 1)
        assert len(store._cache) <= 4

    def test_cached_value_reused(self):
        store = PageStore()
        first = store.page_bytes(9)
        assert store.page_bytes(9) is first


class TestMaterialize:
    def test_materialize_concatenates(self):
        store = PageStore(page_size=64)
        slots = np.asarray([1, 0, 2], dtype=np.uint64)
        blob = store.materialize(slots)
        assert len(blob) == 3 * 64
        assert blob[:64] == store.page_bytes(1)
        assert blob[64:128] == bytes(64)
        assert blob[128:] == store.page_bytes(2)


class TestLruEviction:
    def test_evicts_one_at_a_time(self):
        store = PageStore(cache_limit=4)
        for content_id in range(1, 5):
            store.page_bytes(content_id)
        store.page_bytes(5)
        # Exactly the oldest entry left, not a wholesale flush.
        assert len(store._cache) == 4
        assert 1 not in store._cache
        assert {2, 3, 4, 5} <= set(store._cache)

    def test_recently_used_survives(self):
        store = PageStore(cache_limit=4)
        for content_id in range(1, 5):
            store.page_bytes(content_id)
        store.page_bytes(1)  # refresh 1 → 2 becomes the LRU victim
        store.page_bytes(5)
        assert 1 in store._cache
        assert 2 not in store._cache

    def test_page_eviction_counter_increments(self):
        registry = get_registry()
        counter = registry.counter("pagestore.page_evictions")
        before = counter.value
        store = PageStore(cache_limit=2)
        for content_id in range(1, 6):
            store.page_bytes(content_id)
        assert counter.value == before + 3

    def test_digest_cache_bounded_with_counter(self):
        registry = get_registry()
        counter = registry.counter("pagestore.digest_evictions")
        before = counter.value
        store = PageStore(cache_limit=4)
        store._digest_limit = 3  # shrink for the test; default is 64Ki
        for content_id in range(1, 8):
            store.digest_for(content_id)
        assert len(store._digest_cache) <= 3
        assert counter.value > before


class TestDigests:
    def test_digest_matches_direct_hash(self):
        store = PageStore()
        assert store.digest_for(7) == MD5.digest(store.page_bytes(7))

    def test_digests_for_matches_per_id(self):
        store = PageStore()
        ids = np.asarray([3, 1, 3, 2, 1, 0], dtype=np.uint64)
        batched = store.digests_for(ids)
        assert batched == [store.digest_for(int(cid)) for cid in ids]

    def test_digests_for_computes_each_distinct_once(self):
        store = PageStore(cache_limit=16)
        ids = np.asarray([5, 5, 5, 6, 6], dtype=np.uint64)
        store.digests_for(ids)
        # Only the distinct ids were materialized.
        assert set(store._cache) == {5, 6}

    def test_digests_for_empty(self):
        assert PageStore().digests_for(np.asarray([], dtype=np.uint64)) == []
