"""Unit tests for repro.mem.pagestore."""

import numpy as np
import pytest

from repro.core.checksum import PAGE_SIZE
from repro.mem.pagestore import PageStore


class TestPageBytes:
    def test_page_size(self):
        store = PageStore()
        assert len(store.page_bytes(1)) == PAGE_SIZE

    def test_deterministic(self):
        assert PageStore().page_bytes(42) == PageStore().page_bytes(42)

    def test_distinct_ids_distinct_pages(self):
        store = PageStore()
        assert store.page_bytes(1) != store.page_bytes(2)

    def test_zero_id_is_zero_page(self):
        assert PageStore().page_bytes(0) == bytes(PAGE_SIZE)

    def test_custom_page_size(self):
        store = PageStore(page_size=128)
        assert len(store.page_bytes(5)) == 128

    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            PageStore(page_size=0)

    def test_cache_bounded(self):
        store = PageStore(cache_limit=4)
        for content_id in range(20):
            store.page_bytes(content_id + 1)
        assert len(store._cache) <= 4

    def test_cached_value_reused(self):
        store = PageStore()
        first = store.page_bytes(9)
        assert store.page_bytes(9) is first


class TestMaterialize:
    def test_materialize_concatenates(self):
        store = PageStore(page_size=64)
        slots = np.asarray([1, 0, 2], dtype=np.uint64)
        blob = store.materialize(slots)
        assert len(blob) == 3 * 64
        assert blob[:64] == store.page_bytes(1)
        assert blob[64:128] == bytes(64)
        assert blob[128:] == store.page_bytes(2)
