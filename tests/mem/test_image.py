"""Unit tests for repro.mem.image."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.checksum import PAGE_SIZE
from repro.core.fingerprint import ZERO_HASH
from repro.mem.image import MemoryImage


class TestConstruction:
    def test_zero_filled_by_default(self):
        image = MemoryImage(16)
        assert (image.slots == ZERO_HASH).all()

    def test_non_zero_filled(self):
        image = MemoryImage(16, zero_filled=False)
        assert (image.slots != ZERO_HASH).all()

    def test_from_bytes_size(self):
        image = MemoryImage.from_bytes_size(8 * PAGE_SIZE)
        assert image.num_pages == 8
        assert image.size_bytes == 8 * PAGE_SIZE

    def test_from_bytes_size_rejects_non_multiple(self):
        with pytest.raises(ValueError):
            MemoryImage.from_bytes_size(PAGE_SIZE + 1)

    def test_rejects_zero_pages(self):
        with pytest.raises(ValueError):
            MemoryImage(0)

    def test_slots_view_is_readonly(self):
        image = MemoryImage(4)
        with pytest.raises(ValueError):
            image.slots[0] = 1


class TestWrites:
    def test_fresh_writes_are_globally_unique(self):
        image = MemoryImage(64)
        image.write_fresh(np.arange(64))
        assert len(np.unique(image.slots)) == 64

    def test_fresh_writes_never_reuse_ids_across_calls(self):
        image = MemoryImage(8)
        image.write_fresh(np.arange(8))
        before = set(image.slots.tolist())
        image.write_fresh(np.arange(8))
        after = set(image.slots.tolist())
        assert before.isdisjoint(after)

    def test_write_duplicate_of(self):
        image = MemoryImage(4, zero_filled=False)
        image.write_duplicate_of(np.asarray([1, 2]), source_slot=0)
        assert image.slots[1] == image.slots[0]
        assert image.slots[2] == image.slots[0]

    def test_write_content_explicit(self):
        image = MemoryImage(4)
        image.write_content(np.asarray([3]), np.uint64(77))
        assert image.slots[3] == 77

    def test_zero(self):
        image = MemoryImage(4, zero_filled=False)
        image.zero(np.asarray([0, 2]))
        assert image.slots[0] == ZERO_HASH and image.slots[2] == ZERO_HASH
        assert image.slots[1] != ZERO_HASH

    def test_out_of_range_rejected(self):
        image = MemoryImage(4)
        with pytest.raises(IndexError):
            image.write_fresh(np.asarray([4]))
        with pytest.raises(IndexError):
            image.write_fresh(np.asarray([-1]))


class TestRelocate:
    def test_relocate_preserves_content_multiset(self):
        image = MemoryImage(32, zero_filled=False)
        before = np.sort(image.slots.copy())
        image.relocate(np.arange(32), np.random.default_rng(0))
        assert (np.sort(image.slots) == before).all()

    def test_relocate_single_slot_is_noop(self):
        image = MemoryImage(4, zero_filled=False)
        before = image.slots.copy()
        image.relocate(np.asarray([2]), np.random.default_rng(0))
        assert (image.slots == before).all()

    @given(st.integers(min_value=2, max_value=64), st.integers(0, 1000))
    @settings(max_examples=25)
    def test_relocate_never_changes_unique_set(self, num_pages, seed):
        image = MemoryImage(num_pages, zero_filled=False)
        unique_before = set(np.unique(image.slots).tolist())
        image.relocate(np.arange(num_pages), np.random.default_rng(seed))
        assert set(np.unique(image.slots).tolist()) == unique_before


class TestSnapshotRestore:
    def test_fingerprint_is_snapshot(self):
        image = MemoryImage(8, zero_filled=False)
        fingerprint = image.fingerprint(timestamp=3.0)
        image.write_fresh(np.arange(8))
        # Snapshot unaffected by later writes.
        assert fingerprint.timestamp == 3.0
        assert (fingerprint.hashes != image.slots).all()

    def test_restore(self):
        image = MemoryImage(8, zero_filled=False)
        fingerprint = image.fingerprint()
        image.write_fresh(np.arange(8))
        image.restore(fingerprint)
        assert (image.slots == fingerprint.hashes).all()

    def test_restore_size_mismatch_rejected(self):
        image = MemoryImage(8)
        other = MemoryImage(4).fingerprint()
        with pytest.raises(ValueError):
            image.restore(other)

    def test_clone_shares_allocator_not_slots(self):
        image = MemoryImage(4, zero_filled=False)
        twin = image.clone()
        image.write_fresh(np.asarray([0]))
        twin.write_fresh(np.asarray([0]))
        # Distinct ids even across clones (shared allocator).
        assert image.slots[0] != twin.slots[0]
        # And writes don't leak between them.
        assert image.slots[1] == twin.slots[1]


class TestSampling:
    def test_sample_distinct(self):
        image = MemoryImage(32)
        picks = image.sample_slots(10, np.random.default_rng(0))
        assert len(picks) == len(set(picks.tolist())) == 10

    def test_sample_within_subset(self):
        image = MemoryImage(32)
        subset = np.asarray([1, 3, 5])
        picks = image.sample_slots(2, np.random.default_rng(0), within=subset)
        assert set(picks.tolist()) <= {1, 3, 5}

    def test_sample_caps_at_pool_size(self):
        image = MemoryImage(4)
        picks = image.sample_slots(100, np.random.default_rng(0))
        assert len(picks) == 4

    def test_sample_zero_returns_empty(self):
        image = MemoryImage(4)
        assert image.sample_slots(0, np.random.default_rng(0)).size == 0
