"""Unit tests for incremental checkpoint maintenance."""

import numpy as np
import pytest

from repro.core.fingerprint import Fingerprint
from repro.core.incremental import (
    full_rewrite_seconds,
    plan_checkpoint_update,
    should_update_in_place,
    update_cost_seconds,
)
from repro.storage.disk import HDD_HD204UI, SSD_INTEL330


def fp(values):
    return Fingerprint(hashes=np.asarray(values, dtype=np.uint64))


class TestPlan:
    def test_identical_states_nothing_to_write(self):
        plan = plan_checkpoint_update(fp([1, 2, 3]), fp([1, 2, 3]))
        assert plan.num_changed == 0
        assert plan.write_bytes == 0
        assert plan.unchanged_fraction == 1.0

    def test_changed_slots_planned(self):
        plan = plan_checkpoint_update(fp([1, 9, 3, 8]), fp([1, 2, 3, 4]))
        assert list(plan.changed_slots) == [1, 3]
        assert plan.write_bytes == 2 * 4096

    def test_relocated_content_must_be_rewritten(self):
        # Slot-addressed files: moved content rewrites both slots even
        # though no new bytes exist.
        plan = plan_checkpoint_update(fp([2, 1]), fp([1, 2]))
        assert plan.num_changed == 2

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            plan_checkpoint_update(fp([1]), fp([1, 2]))


class TestCosts:
    def test_in_place_wins_on_ssd_for_small_updates(self):
        current = fp(list(range(10000)))
        stored_values = list(range(10000))
        stored_values[0] = 999999
        plan = plan_checkpoint_update(current, fp(stored_values))
        assert should_update_in_place(plan, SSD_INTEL330)

    def test_hdd_prefers_rewrite_when_most_pages_changed(self):
        n = 10000
        current = fp(list(range(n, 2 * n)))  # everything changed
        plan = plan_checkpoint_update(current, fp(list(range(n))))
        # 10k random writes at 75 IOPS ≫ one 40 MiB sequential write.
        assert not should_update_in_place(plan, HDD_HD204UI)
        assert update_cost_seconds(plan, HDD_HD204UI) > full_rewrite_seconds(
            n, HDD_HD204UI
        )

    def test_hdd_crossover_exists(self):
        # A high-similarity VM updates few pages: in-place wins even on
        # the spinning disk.
        n = 100000
        stored = list(range(n))
        current = list(range(n))
        for slot in range(50):
            current[slot] = n + slot
        plan = plan_checkpoint_update(fp(current), fp(stored))
        assert should_update_in_place(plan, HDD_HD204UI)

    def test_negative_pages_rejected(self):
        with pytest.raises(ValueError):
            full_rewrite_seconds(-1, SSD_INTEL330)
