"""Unit tests for repro.core.compression."""

import pytest

from repro.core.compression import (
    DELTA_XBZRLE,
    LZO_FAST,
    NO_COMPRESSION,
    CompressionModel,
    compress_page,
    decompress_page,
    get_compression,
)

MIB = 2**20


class TestRegistry:
    def test_presets(self):
        assert get_compression("none") is NO_COMPRESSION
        assert get_compression("lzo-fast") is LZO_FAST
        assert get_compression("delta-xbzrle") is DELTA_XBZRLE

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_compression("brotli")


class TestCostModel:
    def test_no_compression_is_identity(self):
        assert NO_COMPRESSION.compressed_bytes(MIB) == MIB
        assert NO_COMPRESSION.compress_time(MIB) < 1e-9

    def test_ratio_applied(self):
        assert LZO_FAST.compressed_bytes(2 * MIB) == MIB

    def test_times_scale_with_cores(self):
        single = LZO_FAST.compress_time(MIB, cores=1)
        quad = LZO_FAST.compress_time(MIB, cores=4)
        assert quad == pytest.approx(single / 4)

    def test_decompress_faster_than_compress(self):
        assert LZO_FAST.decompress_time(MIB) < LZO_FAST.compress_time(MIB)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            LZO_FAST.compressed_bytes(-1)
        with pytest.raises(ValueError):
            LZO_FAST.compress_time(MIB, cores=0)
        with pytest.raises(ValueError):
            CompressionModel(name="x", ratio=0.5, throughput=1, decompress_throughput=1)
        with pytest.raises(ValueError):
            CompressionModel(name="x", ratio=2, throughput=0, decompress_throughput=1)


class TestRealCompressor:
    def test_roundtrip(self):
        page = b"abcd" * 1024
        assert decompress_page(compress_page(page)) == page

    def test_compressible_page_shrinks(self):
        page = b"\x00" * 4096
        assert len(compress_page(page)) < 64

    def test_random_page_does_not_shrink_much(self):
        import os

        page = os.urandom(4096)
        assert len(compress_page(page)) > 3900
