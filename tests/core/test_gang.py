"""Unit tests for gang migration (cross-VM redundancy)."""

import numpy as np
import pytest

from repro.core.checkpoint import Checkpoint
from repro.core.fingerprint import Fingerprint
from repro.core.gang import (
    GangMember,
    gang_transfer_set,
    shared_base_image_fleet,
)


def fp(values):
    return Fingerprint(hashes=np.asarray(values, dtype=np.uint64))


def member(vm_id, values, checkpoint_values=None):
    checkpoint = None
    if checkpoint_values is not None:
        checkpoint = Checkpoint(vm_id=vm_id, fingerprint=fp(checkpoint_values))
    return GangMember(vm_id=vm_id, fingerprint=fp(values), checkpoint=checkpoint)


class TestCrossVmDedup:
    def test_shared_pages_sent_once(self):
        gang = [member("a", [1, 2, 3]), member("b", [1, 2, 4])]
        result = gang_transfer_set(gang, cross_vm_dedup=True)
        assert result.per_vm_full["a"] == 3
        assert result.per_vm_full["b"] == 1  # only the private page
        assert result.per_vm_ref["b"] == 2

    def test_without_cross_dedup_each_vm_pays(self):
        gang = [member("a", [1, 2, 3]), member("b", [1, 2, 4])]
        result = gang_transfer_set(gang, cross_vm_dedup=False)
        assert result.per_vm_full["b"] == 3

    def test_intra_vm_duplicates_still_deduped_either_way(self):
        gang = [member("a", [5, 5, 5])]
        for cross in (True, False):
            result = gang_transfer_set(gang, cross_vm_dedup=cross)
            assert result.per_vm_full["a"] == 1
            assert result.per_vm_ref["a"] == 2

    def test_totals(self):
        gang = [member("a", [1, 2]), member("b", [2, 3])]
        result = gang_transfer_set(gang)
        assert result.total_pages == 4
        assert result.full_pages + result.ref_pages + result.reused_pages == 4
        assert 0.0 <= result.page_fraction <= 1.0


class TestCheckpointsInGangs:
    def test_own_checkpoint_reuse(self):
        gang = [member("a", [1, 2, 9], checkpoint_values=[1, 2, 3])]
        result = gang_transfer_set(gang)
        assert result.per_vm_reused["a"] == 2
        assert result.per_vm_full["a"] == 1

    def test_cross_vm_checkpoints(self):
        # b has no checkpoint, but a's checkpoint holds b's content.
        gang = [
            member("a", [1, 2], checkpoint_values=[1, 2]),
            member("b", [1, 2]),
        ]
        isolated = gang_transfer_set(gang, cross_vm_checkpoints=False)
        merged = gang_transfer_set(gang, cross_vm_checkpoints=True)
        assert isolated.per_vm_reused["b"] == 0
        assert merged.per_vm_reused["b"] == 2
        assert merged.full_pages < isolated.full_pages

    def test_checkpoint_beats_dedup_in_priority(self):
        # Content in the checkpoint never enters the stream, so the
        # second VM cannot reference it — it reuses its own checkpoint.
        gang = [
            member("a", [7], checkpoint_values=[7]),
            member("b", [7], checkpoint_values=[7]),
        ]
        result = gang_transfer_set(gang)
        assert result.full_pages == 0
        assert result.reused_pages == 2


class TestValidation:
    def test_empty_gang_rejected(self):
        with pytest.raises(ValueError):
            gang_transfer_set([])

    def test_duplicate_ids_rejected(self):
        gang = [member("a", [1]), member("a", [2])]
        with pytest.raises(ValueError):
            gang_transfer_set(gang)


class TestSharedBaseImageFleet:
    def test_shapes_and_sharing(self):
        rng = np.random.default_rng(1)
        fleet = shared_base_image_fleet(4, 256, shared_fraction=0.5, rng=rng)
        assert len(fleet) == 4
        assert all(f.num_pages == 256 for f in fleet)
        shared = np.intersect1d(
            fleet[0].unique_hashes(), fleet[1].unique_hashes()
        )
        assert len(shared) >= 0.45 * 256

    def test_gang_dedup_wins_on_shared_images(self):
        rng = np.random.default_rng(2)
        fleet = shared_base_image_fleet(4, 256, shared_fraction=0.6, rng=rng)
        gang = [GangMember(vm_id=f"vm{i}", fingerprint=f) for i, f in enumerate(fleet)]
        together = gang_transfer_set(gang, cross_vm_dedup=True)
        separate = gang_transfer_set(gang, cross_vm_dedup=False)
        # The shared base crosses once instead of four times.
        assert together.full_pages < 0.7 * separate.full_pages

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            shared_base_image_fleet(0, 10, 0.5, rng)
        with pytest.raises(ValueError):
            shared_base_image_fleet(1, 10, 1.5, rng)
