"""Unit tests for repro.core.fingerprint."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.fingerprint import ZERO_HASH, Fingerprint, similarity_matrix


def fp(values, timestamp=0.0):
    return Fingerprint(hashes=np.asarray(values, dtype=np.uint64), timestamp=timestamp)


hash_arrays = arrays(
    dtype=np.uint64,
    shape=st.integers(min_value=1, max_value=64),
    elements=st.integers(min_value=0, max_value=12),
)


class TestBasics:
    def test_num_pages(self):
        assert fp([1, 2, 3]).num_pages == 3

    def test_rejects_2d_hashes(self):
        with pytest.raises(ValueError):
            Fingerprint(hashes=np.zeros((2, 2), dtype=np.uint64))

    def test_unique_hashes_sorted_and_deduped(self):
        unique = fp([5, 1, 5, 3, 1]).unique_hashes()
        assert list(unique) == [1, 3, 5]

    def test_num_unique(self):
        assert fp([7, 7, 7]).num_unique == 1

    def test_unique_cache_is_stable(self):
        fingerprint = fp([2, 1, 2])
        first = fingerprint.unique_hashes()
        assert fingerprint.unique_hashes() is first


class TestDuplicateAndZeroStats:
    def test_duplicate_fraction_all_unique(self):
        assert fp([1, 2, 3, 4]).duplicate_fraction() == 0.0

    def test_duplicate_fraction_half(self):
        assert fp([1, 1, 2, 2]).duplicate_fraction() == pytest.approx(0.5)

    def test_zero_fraction(self):
        assert fp([0, 0, 1, 2]).zero_fraction() == pytest.approx(0.5)

    def test_zero_hash_constant(self):
        assert int(ZERO_HASH) == 0


class TestSimilarity:
    def test_identical_fingerprints_similarity_one(self):
        a = fp([1, 2, 3])
        assert a.similarity_to(fp([1, 2, 3])) == 1.0

    def test_disjoint_fingerprints_similarity_zero(self):
        assert fp([1, 2]).similarity_to(fp([3, 4])) == 0.0

    def test_paper_definition_is_asymmetric(self):
        # |Ua ∩ Ub| / |Ua| — §2.3.
        a, b = fp([1, 2, 3, 4]), fp([1, 2, 5, 5])
        assert a.similarity_to(b) == pytest.approx(2 / 4)
        assert b.similarity_to(a) == pytest.approx(2 / 3)

    def test_duplicates_do_not_inflate_similarity(self):
        # Similarity counts unique hashes, not slots.
        a = fp([1, 1, 1, 2])
        b = fp([1, 3, 3, 3])
        assert a.similarity_to(b) == pytest.approx(1 / 2)

    @given(hash_arrays)
    def test_self_similarity_is_one(self, values):
        fingerprint = Fingerprint(hashes=values)
        assert fingerprint.similarity_to(fingerprint) == pytest.approx(1.0)

    @given(hash_arrays, hash_arrays)
    def test_similarity_bounded(self, a_values, b_values):
        a, b = Fingerprint(hashes=a_values), Fingerprint(hashes=b_values)
        assert 0.0 <= a.similarity_to(b) <= 1.0


class TestDirtySlots:
    def test_no_changes_no_dirty(self):
        a = fp([1, 2, 3])
        assert len(a.dirty_slots(since=fp([1, 2, 3]))) == 0

    def test_changed_slots_reported(self):
        current, old = fp([1, 9, 3]), fp([1, 2, 3])
        assert list(current.dirty_slots(since=old)) == [1]

    def test_relocated_content_counts_as_dirty(self):
        # Content swap: both slots dirty even though contents survive.
        current, old = fp([2, 1]), fp([1, 2])
        assert list(current.dirty_slots(since=old)) == [0, 1]

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            fp([1, 2]).dirty_slots(since=fp([1, 2, 3]))

    @given(hash_arrays)
    def test_dirty_against_self_is_empty(self, values):
        fingerprint = Fingerprint(hashes=values)
        assert fingerprint.dirty_slots(since=fingerprint).size == 0


class TestContainsHashes:
    def test_membership_mask(self):
        fingerprint = fp([1, 2, 2, 3])
        mask = fingerprint.contains_hashes(np.asarray([2, 4], dtype=np.uint64))
        assert list(mask) == [True, False]


class TestSimilarityMatrix:
    def test_diagonal_is_one(self):
        matrix = similarity_matrix([fp([1, 2]), fp([3, 4])])
        assert matrix[0, 0] == 1.0 and matrix[1, 1] == 1.0

    def test_matches_pairwise_calls(self):
        prints = [fp([1, 2, 3]), fp([1, 2, 9]), fp([9, 9, 9])]
        matrix = similarity_matrix(prints)
        for a in range(3):
            for b in range(3):
                assert matrix[a, b] == pytest.approx(
                    prints[a].similarity_to(prints[b])
                )
