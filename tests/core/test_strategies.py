"""Unit tests for repro.core.strategies."""

import pytest

from repro.core.strategies import (
    DEDUP,
    MIYAKODORI,
    MIYAKODORI_DEDUP,
    QEMU,
    VECYCLE,
    VECYCLE_DEDUP,
    VECYCLE_DIRTY,
    available_strategies,
    get_strategy,
)
from repro.core.transfer import Method


class TestRegistry:
    def test_all_paper_systems_registered(self):
        names = set(available_strategies())
        assert {
            "qemu",
            "dedup",
            "miyakodori",
            "miyakodori+dedup",
            "vecycle",
            "vecycle+dedup",
            "vecycle+dirty",
        } <= names

    def test_get_strategy_roundtrip(self):
        for name in available_strategies():
            assert get_strategy(name).name == name

    def test_unknown_strategy_raises(self):
        with pytest.raises(KeyError, match="vecycle"):
            get_strategy("xen-motion")


class TestSemantics:
    def test_qemu_is_full_migration(self):
        assert QEMU.method is Method.FULL
        assert not QEMU.reuses_checkpoint

    def test_dedup_needs_no_checkpoint(self):
        assert DEDUP.method is Method.DEDUP
        assert not DEDUP.reuses_checkpoint

    def test_miyakodori_uses_dirty_tracking(self):
        assert MIYAKODORI.method is Method.DIRTY
        assert MIYAKODORI.reuses_checkpoint
        assert MIYAKODORI_DEDUP.method is Method.DIRTY_DEDUP

    def test_vecycle_uses_content_hashes(self):
        assert VECYCLE.method is Method.HASHES
        assert VECYCLE.reuses_checkpoint
        assert VECYCLE_DEDUP.method is Method.HASHES_DEDUP
        assert VECYCLE_DIRTY.method is Method.DIRTY_HASHES

    def test_default_checksum_is_md5(self):
        assert VECYCLE.checksum.name == "md5"
        assert VECYCLE.wire.checksum_bytes == 16

    def test_with_checksum_swaps_algorithm(self):
        sha = VECYCLE.with_checksum("sha256")
        assert sha.checksum.name == "sha256"
        assert sha.wire.checksum_bytes == 32
        assert sha.method is Method.HASHES
        # Original untouched (frozen dataclass).
        assert VECYCLE.checksum.name == "md5"
