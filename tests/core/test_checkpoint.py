"""Unit tests for repro.core.checkpoint."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.checkpoint import (
    CapacityError,
    Checkpoint,
    CheckpointStore,
    ChecksumIndex,
)
from repro.core.checksum import PAGE_SIZE
from repro.core.fingerprint import Fingerprint


def fp(values, timestamp=0.0):
    return Fingerprint(hashes=np.asarray(values, dtype=np.uint64), timestamp=timestamp)


class TestChecksumIndex:
    def test_lookup_present(self):
        index = ChecksumIndex(fp([10, 20, 30]))
        assert index.lookup(20) == 1

    def test_lookup_absent_returns_none(self):
        index = ChecksumIndex(fp([10, 20, 30]))
        assert index.lookup(25) is None

    def test_contains_protocol(self):
        index = ChecksumIndex(fp([10, 20]))
        assert 10 in index and 15 not in index

    def test_duplicates_keep_first_slot(self):
        index = ChecksumIndex(fp([7, 5, 7, 5]))
        assert index.lookup(7) == 0
        assert index.lookup(5) == 1

    def test_len_counts_unique(self):
        assert len(ChecksumIndex(fp([1, 1, 2, 3, 3]))) == 3

    def test_lookup_offset_is_slot_times_page_size(self):
        index = ChecksumIndex(fp([10, 20, 30]))
        assert index.lookup_offset(30) == 2 * PAGE_SIZE
        assert index.lookup_offset(99) is None

    def test_contains_many(self):
        index = ChecksumIndex(fp([1, 2, 3]))
        mask = index.contains_many(np.asarray([0, 2, 5, 3], dtype=np.uint64))
        assert list(mask) == [False, True, False, True]

    def test_contains_many_empty_index(self):
        index = ChecksumIndex(fp([4]))
        # A one-entry index against queries outside its range.
        mask = index.contains_many(np.asarray([1, 4, 9], dtype=np.uint64))
        assert list(mask) == [False, True, False]

    def test_lookup_many_matches_scalar_lookup(self):
        index = ChecksumIndex(fp([7, 5, 7, 5, 9]))
        queries = np.asarray([5, 6, 7, 9, 0], dtype=np.uint64)
        slots = index.lookup_many(queries)
        expected = [
            index.lookup(int(q)) if index.lookup(int(q)) is not None else -1
            for q in queries
        ]
        assert slots.dtype == np.int64
        assert list(slots) == expected

    def test_lookup_many_empty_queries(self):
        index = ChecksumIndex(fp([1, 2]))
        assert index.lookup_many(np.asarray([], dtype=np.uint64)).size == 0

    @given(
        arrays(
            dtype=np.uint64,
            shape=st.integers(min_value=1, max_value=64),
            elements=st.integers(min_value=0, max_value=20),
        ),
        arrays(
            dtype=np.uint64,
            shape=st.integers(min_value=0, max_value=64),
            elements=st.integers(min_value=0, max_value=25),
        ),
    )
    def test_lookup_many_always_matches_scalar(self, members, queries):
        index = ChecksumIndex(fp(members))
        slots = index.lookup_many(queries)
        for query, slot in zip(queries, slots):
            scalar = index.lookup(int(query))
            assert slot == (scalar if scalar is not None else -1)

    def test_unique_hashes_sorted_readonly(self):
        index = ChecksumIndex(fp([3, 1, 2]))
        unique = index.unique_hashes
        assert list(unique) == [1, 2, 3]
        with pytest.raises(ValueError):
            unique[0] = 9

    @given(
        arrays(
            dtype=np.uint64,
            shape=st.integers(min_value=1, max_value=64),
            elements=st.integers(min_value=0, max_value=20),
        )
    )
    def test_lookup_always_finds_member_contents(self, values):
        fingerprint = Fingerprint(hashes=values)
        index = ChecksumIndex(fingerprint)
        for value in np.unique(values):
            slot = index.lookup(int(value))
            assert slot is not None
            assert fingerprint.hashes[slot] == value


class TestCheckpoint:
    def test_size_bytes(self):
        checkpoint = Checkpoint(vm_id="vm", fingerprint=fp([1] * 8))
        assert checkpoint.size_bytes == 8 * PAGE_SIZE

    def test_index_lazy_and_cached(self):
        checkpoint = Checkpoint(vm_id="vm", fingerprint=fp([1, 2]))
        assert checkpoint.index is checkpoint.index

    def test_timestamp_from_fingerprint(self):
        checkpoint = Checkpoint(vm_id="vm", fingerprint=fp([1], timestamp=99.0))
        assert checkpoint.timestamp == 99.0


class TestCheckpointStore:
    def _checkpoint(self, vm_id, pages=4):
        return Checkpoint(vm_id=vm_id, fingerprint=fp(list(range(pages))))

    def test_store_and_get(self):
        store = CheckpointStore()
        checkpoint = self._checkpoint("vm1")
        store.store(checkpoint)
        assert store.get("vm1") is checkpoint
        assert "vm1" in store

    def test_missing_vm_returns_none(self):
        assert CheckpointStore().get("nope") is None

    def test_replacement_keeps_one_per_vm(self):
        store = CheckpointStore()
        store.store(self._checkpoint("vm1"))
        newer = self._checkpoint("vm1")
        store.store(newer)
        assert len(store) == 1
        assert store.get("vm1") is newer

    def test_capacity_evicts_lru(self):
        page_bytes = 4 * PAGE_SIZE
        store = CheckpointStore(capacity_bytes=2 * page_bytes)
        store.store(self._checkpoint("a"))
        store.store(self._checkpoint("b"))
        store.get("a")  # refresh a → b becomes LRU
        store.store(self._checkpoint("c"))
        assert "a" in store and "c" in store and "b" not in store

    def test_oversized_checkpoint_rejected(self):
        store = CheckpointStore(capacity_bytes=PAGE_SIZE)
        with pytest.raises(ValueError):
            store.store(self._checkpoint("vm", pages=4))

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            CheckpointStore(capacity_bytes=0)

    def test_evict(self):
        store = CheckpointStore()
        store.store(self._checkpoint("vm1"))
        store.evict("vm1")
        assert "vm1" not in store
        store.evict("vm1")  # idempotent

    def test_used_bytes(self):
        store = CheckpointStore()
        store.store(self._checkpoint("a", pages=2))
        store.store(self._checkpoint("b", pages=3))
        assert store.used_bytes == 5 * PAGE_SIZE

    def test_vm_ids_sorted(self):
        store = CheckpointStore()
        for vm_id in ("z", "a", "m"):
            store.store(self._checkpoint(vm_id))
        assert store.vm_ids() == ["a", "m", "z"]


class TestCapacityEvictionRegressions:
    """Regression tests for the eviction bugs fixed in this PR."""

    def _checkpoint(self, vm_id, pages=4):
        return Checkpoint(vm_id=vm_id, fingerprint=fp(list(range(pages))))

    def test_own_vm_is_never_an_eviction_victim(self):
        # Replacing "a" while it is the LRU entry used to evict "a"
        # itself mid-store, corrupting the bookkeeping.
        store = CheckpointStore(capacity_bytes=2 * 4 * PAGE_SIZE)
        store.store(self._checkpoint("a"))
        store.store(self._checkpoint("b"))  # "a" is now the LRU entry
        replacement = self._checkpoint("a")
        store.store(replacement)
        assert store.get("a") is replacement
        assert "b" in store  # the innocent VM survived
        assert store.used_bytes == 2 * 4 * PAGE_SIZE

    def test_replaced_size_subtracted_before_evicting_others(self):
        # Replacing a VM's 3-page checkpoint with a 4-page one in an
        # 8-page store must not evict anyone: 8 - 3 + 4 ≤ 8 after the
        # swap.  Double-counting the replaced bytes evicted "b".
        store = CheckpointStore(capacity_bytes=8 * PAGE_SIZE)
        store.store(self._checkpoint("a", pages=3))
        store.store(self._checkpoint("b", pages=4))
        store.store(self._checkpoint("a", pages=4))
        assert "b" in store
        assert store.used_bytes == 8 * PAGE_SIZE

    def test_oversized_checkpoint_raises_typed_capacity_error(self):
        store = CheckpointStore(capacity_bytes=PAGE_SIZE)
        with pytest.raises(CapacityError):
            store.store(self._checkpoint("vm", pages=4))

    def test_capacity_error_is_a_value_error(self):
        # Callers that caught the old bare ValueError keep working.
        assert issubclass(CapacityError, ValueError)

    def test_no_bare_min_value_error_when_store_holds_only_own_vm(self):
        # The old code fed an empty dict to min() and raised its bare
        # "min() arg is an empty sequence" ValueError.  Now the swap
        # succeeds: the VM's own checkpoint is dropped first, making
        # room without touching min() at all.
        store = CheckpointStore(capacity_bytes=4 * PAGE_SIZE)
        store.store(self._checkpoint("only", pages=4))
        store.store(self._checkpoint("only", pages=4))
        assert "only" in store

    def test_used_bytes_stays_consistent_through_churn(self):
        store = CheckpointStore(capacity_bytes=10 * PAGE_SIZE)
        for round_no in range(5):
            for vm_id in ("a", "b", "c"):
                store.store(self._checkpoint(vm_id, pages=2 + round_no % 2))
        expected = sum(
            store.get(vm_id).size_bytes for vm_id in store.vm_ids()
        )
        assert store.used_bytes == expected

    def test_on_evict_fires_for_every_drop_path(self):
        dropped = []
        store = CheckpointStore(
            capacity_bytes=2 * 4 * PAGE_SIZE, on_evict=dropped.append
        )
        first_a = self._checkpoint("a")
        store.store(first_a)
        store.store(self._checkpoint("b"))
        store.store(self._checkpoint("a"))  # replacement drops first_a
        store.store(self._checkpoint("c"))  # capacity evicts LRU "b"
        store.evict("c")  # explicit eviction
        assert [checkpoint.vm_id for checkpoint in dropped] == ["a", "b", "c"]
        assert dropped[0] is first_a
