"""Persistence tests for the checkpoint store (host restart survival)."""

import numpy as np
import pytest

from repro.core.checkpoint import Checkpoint, CheckpointStore
from repro.core.fingerprint import Fingerprint


def checkpoint(vm_id, pages=8, timestamp=0.0, with_generations=True):
    rng = np.random.default_rng(hash(vm_id) % 2**31)
    return Checkpoint(
        vm_id=vm_id,
        fingerprint=Fingerprint(
            hashes=rng.integers(0, 100, size=pages).astype(np.uint64),
            timestamp=timestamp,
        ),
        generation_vector=(
            rng.integers(0, 5, size=pages).astype(np.int64)
            if with_generations
            else None
        ),
    )


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        store = CheckpointStore()
        store.store(checkpoint("vm-a", timestamp=100.0))
        store.store(checkpoint("vm-b", timestamp=200.0, with_generations=False))
        path = tmp_path / "store.npz"
        store.save(path)

        loaded = CheckpointStore.load(path)
        assert loaded.vm_ids() == ["vm-a", "vm-b"]
        for vm_id in ("vm-a", "vm-b"):
            original = store.get(vm_id)
            restored = loaded.get(vm_id)
            assert (original.fingerprint.hashes == restored.fingerprint.hashes).all()
            assert original.timestamp == restored.timestamp
        assert loaded.get("vm-b").generation_vector is None
        assert (
            loaded.get("vm-a").generation_vector
            == store.get("vm-a").generation_vector
        ).all()

    def test_capacity_preserved(self, tmp_path):
        bounded = CheckpointStore(capacity_bytes=1 << 20)
        bounded.store(checkpoint("vm", pages=4))
        path = tmp_path / "bounded.npz"
        bounded.save(path)
        assert CheckpointStore.load(path).capacity_bytes == 1 << 20

    def test_unbounded_preserved(self, tmp_path):
        store = CheckpointStore()
        store.store(checkpoint("vm"))
        path = tmp_path / "unbounded.npz"
        store.save(path)
        assert CheckpointStore.load(path).capacity_bytes is None

    def test_empty_store_roundtrip(self, tmp_path):
        path = tmp_path / "empty.npz"
        CheckpointStore().save(path)
        assert CheckpointStore.load(path).vm_ids() == []

    def test_index_rebuilt_after_load(self, tmp_path):
        store = CheckpointStore()
        original = checkpoint("vm")
        store.store(original)
        path = tmp_path / "store.npz"
        store.save(path)
        restored = CheckpointStore.load(path).get("vm")
        for value in np.unique(original.fingerprint.hashes):
            assert restored.index.lookup(int(value)) is not None

    def test_restored_store_usable_for_migration(self, tmp_path, small_vm):
        from repro.core.strategies import VECYCLE
        from repro.migration.precopy import simulate_migration
        from repro.net.link import LAN_1GBE

        store = CheckpointStore()
        store.store(
            Checkpoint(vm_id=small_vm.vm_id, fingerprint=small_vm.fingerprint())
        )
        path = tmp_path / "host.npz"
        store.save(path)
        restored = CheckpointStore.load(path)
        report = simulate_migration(
            small_vm, VECYCLE, LAN_1GBE, checkpoint=restored.get(small_vm.vm_id)
        )
        assert report.similarity == pytest.approx(1.0)
        assert report.pages_full == 0
