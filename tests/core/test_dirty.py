"""Unit tests for repro.core.dirty."""

import numpy as np
import pytest

from repro.core.dirty import GenerationTracker, content_dirty_slots
from repro.core.fingerprint import Fingerprint


def fp(values):
    return Fingerprint(hashes=np.asarray(values, dtype=np.uint64))


class TestGenerationTracker:
    def test_initial_state_all_clean(self):
        tracker = GenerationTracker(8)
        snapshot = tracker.snapshot()
        assert len(tracker.dirty_since(snapshot)) == 0
        assert len(tracker.clean_since(snapshot)) == 8

    def test_write_marks_dirty(self):
        tracker = GenerationTracker(8)
        snapshot = tracker.snapshot()
        tracker.record_writes(np.asarray([2, 5]))
        assert list(tracker.dirty_since(snapshot)) == [2, 5]

    def test_repeated_writes_still_one_dirty_slot(self):
        tracker = GenerationTracker(4)
        snapshot = tracker.snapshot()
        for _ in range(3):
            tracker.record_writes(np.asarray([1]))
        assert list(tracker.dirty_since(snapshot)) == [1]

    def test_duplicate_slots_in_one_batch(self):
        tracker = GenerationTracker(4)
        snapshot = tracker.snapshot()
        tracker.record_writes(np.asarray([3, 3, 3]))
        assert list(tracker.dirty_since(snapshot)) == [3]

    def test_snapshot_isolation(self):
        tracker = GenerationTracker(4)
        first = tracker.snapshot()
        tracker.record_writes(np.asarray([0]))
        second = tracker.snapshot()
        tracker.record_writes(np.asarray([1]))
        assert list(tracker.dirty_since(first)) == [0, 1]
        assert list(tracker.dirty_since(second)) == [1]

    def test_clean_complement(self):
        tracker = GenerationTracker(5)
        snapshot = tracker.snapshot()
        tracker.record_writes(np.asarray([0, 4]))
        dirty = set(tracker.dirty_since(snapshot))
        clean = set(tracker.clean_since(snapshot))
        assert dirty | clean == set(range(5))
        assert dirty & clean == set()

    def test_out_of_range_write_rejected(self):
        tracker = GenerationTracker(4)
        with pytest.raises(IndexError):
            tracker.record_writes(np.asarray([4]))

    def test_shape_mismatch_rejected(self):
        tracker = GenerationTracker(4)
        with pytest.raises(ValueError):
            tracker.dirty_since(np.zeros(5, dtype=np.int64))
        with pytest.raises(ValueError):
            tracker.clean_since(np.zeros(5, dtype=np.int64))

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            GenerationTracker(0)

    def test_generations_view_readonly(self):
        tracker = GenerationTracker(2)
        with pytest.raises(ValueError):
            tracker.generations[0] = 1


class TestContentDirtyProxy:
    def test_proxy_matches_fingerprint_dirty(self):
        current, old = fp([1, 9, 3, 4]), fp([1, 2, 3, 9])
        assert list(content_dirty_slots(current, old)) == [1, 3]

    def test_generation_tracking_overestimates_relocation(self):
        # A content swap: generation counters see two writes, the
        # content proxy also flags both slots, but content-based
        # redundancy elimination (tested elsewhere) transfers neither.
        tracker = GenerationTracker(2)
        snapshot = tracker.snapshot()
        tracker.record_writes(np.asarray([0, 1]))  # the swap writes
        assert len(tracker.dirty_since(snapshot)) == 2
