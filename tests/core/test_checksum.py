"""Unit tests for repro.core.checksum."""

import hashlib

import pytest
from hypothesis import given, strategies as st

from repro.core.checksum import (
    MD5,
    PAGE_SIZE,
    ChecksumAlgorithm,
    available_algorithms,
    get_algorithm,
    measure_throughput,
    register_algorithm,
)


class TestRegistry:
    def test_md5_is_default(self):
        assert MD5.name == "md5"
        assert MD5.digest_size == 16

    def test_all_paper_algorithms_present(self):
        names = set(available_algorithms())
        assert {"md5", "sha1", "sha256"} <= names

    def test_get_algorithm_roundtrip(self):
        for name in available_algorithms():
            assert get_algorithm(name).name == name

    def test_unknown_algorithm_raises_with_known_list(self):
        with pytest.raises(KeyError, match="md5"):
            get_algorithm("crc32")

    def test_register_custom_algorithm(self):
        custom = ChecksumAlgorithm(
            name="test-xor",
            digest_size=1,
            throughput=1e9,
            func=lambda data: bytes([sum(data) % 256]),
        )
        register_algorithm(custom)
        assert get_algorithm("test-xor").digest(b"\x01\x02") == bytes([3])


class TestDigests:
    def test_md5_matches_hashlib(self):
        page = b"x" * PAGE_SIZE
        assert MD5.digest(page) == hashlib.md5(page).digest()

    def test_sha256_matches_hashlib(self):
        page = bytes(range(256)) * (PAGE_SIZE // 256)
        assert get_algorithm("sha256").digest(page) == hashlib.sha256(page).digest()

    def test_fnv1a_is_deterministic_and_8_bytes(self):
        fnv = get_algorithm("fnv1a")
        digest = fnv.digest(b"hello world")
        assert len(digest) == 8
        assert digest == fnv.digest(b"hello world")

    def test_fnv1a_distinguishes_pages(self):
        fnv = get_algorithm("fnv1a")
        assert fnv.digest(b"a" * 64) != fnv.digest(b"b" * 64)

    @given(st.binary(min_size=0, max_size=256))
    def test_every_algorithm_digest_size_is_consistent(self, data):
        for name in ("md5", "sha1", "blake2b", "fnv1a"):
            algorithm = get_algorithm(name)
            assert len(algorithm.digest(data)) == algorithm.digest_size


class TestCostModel:
    def test_seconds_scale_linearly(self):
        assert MD5.seconds_for(2 * PAGE_SIZE) == pytest.approx(
            2 * MD5.seconds_for(PAGE_SIZE)
        )

    def test_zero_bytes_take_zero_time(self):
        assert MD5.seconds_for(0) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            MD5.seconds_for(-1)

    def test_paper_md5_rate(self):
        # §3.4: ~350 MiB/s single core.
        assert MD5.throughput == 350 * 2**20

    def test_announce_bytes_4gib_vm_is_16mib(self):
        # §3.2: 2^20 pages * 16 B MD5 = 16 MiB.
        num_pages = (4 * 2**30) // PAGE_SIZE
        assert MD5.announce_bytes(num_pages) == 16 * 2**20

    def test_announce_bytes_rejects_negative(self):
        with pytest.raises(ValueError):
            MD5.announce_bytes(-1)


class TestMeasurement:
    def test_measure_throughput_positive(self):
        rate = measure_throughput(MD5, total_bytes=64 * PAGE_SIZE)
        assert rate > 0

    def test_measure_throughput_rejects_zero_bytes(self):
        with pytest.raises(ValueError):
            measure_throughput(MD5, total_bytes=0)
