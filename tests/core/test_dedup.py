"""Unit tests for repro.core.dedup."""

import numpy as np
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.dedup import DedupCache, dedup_split, dedup_unique_count

hash_arrays = arrays(
    dtype=np.uint64,
    shape=st.integers(min_value=0, max_value=128),
    elements=st.integers(min_value=0, max_value=15),
)


class TestDedupCache:
    def test_first_offer_is_miss(self):
        cache = DedupCache()
        assert cache.offer(42) is False

    def test_repeat_offer_is_hit(self):
        cache = DedupCache()
        cache.offer(42)
        assert cache.offer(42) is True

    def test_distinct_contents_all_miss(self):
        cache = DedupCache()
        assert [cache.offer(h) for h in (1, 2, 3)] == [False, False, False]
        assert len(cache) == 3

    def test_reset_clears_state(self):
        cache = DedupCache()
        cache.offer(1)
        cache.reset()
        assert cache.offer(1) is False


class TestDedupSplit:
    def test_all_unique_all_full(self):
        full, ref = dedup_split(np.asarray([1, 2, 3], dtype=np.uint64))
        assert full.all() and not ref.any()

    def test_repeats_become_refs(self):
        full, ref = dedup_split(np.asarray([5, 5, 5], dtype=np.uint64))
        assert list(full) == [True, False, False]
        assert list(ref) == [False, True, True]

    def test_first_occurrence_in_stream_order_is_full(self):
        full, _ = dedup_split(np.asarray([9, 1, 9, 1, 2], dtype=np.uint64))
        assert list(full) == [True, True, False, False, True]

    def test_empty_input(self):
        full, ref = dedup_split(np.asarray([], dtype=np.uint64))
        assert full.size == 0 and ref.size == 0

    @given(hash_arrays)
    def test_masks_partition_input(self, hashes):
        full, ref = dedup_split(hashes)
        assert (full ^ ref).all() or hashes.size == 0
        assert int(full.sum()) == dedup_unique_count(hashes)

    @given(hash_arrays)
    def test_split_agrees_with_cache(self, hashes):
        cache = DedupCache()
        expected = [not cache.offer(int(h)) for h in hashes]
        full, _ = dedup_split(hashes)
        assert list(full) == expected


class TestUniqueCount:
    def test_empty(self):
        assert dedup_unique_count([]) == 0

    def test_counts_distinct(self):
        assert dedup_unique_count([1, 1, 2, 3, 3, 3]) == 3

    def test_accepts_iterables(self):
        assert dedup_unique_count(iter([4, 4, 5])) == 2
