"""Unit and property tests for repro.core.transfer.

The central invariants of the paper's Figure 3 taxonomy live here:
every method partitions the slots, ``hashes`` never transfers more than
``dirty``, dedup never increases full pages, and adding dirty tracking
to hashes changes only the checksum work, not the transfer set.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.fingerprint import Fingerprint
from repro.core.transfer import (
    Method,
    PAPER_METHODS,
    compare_methods,
    compute_transfer_set,
)


def fp(values):
    return Fingerprint(hashes=np.asarray(values, dtype=np.uint64))


pair_strategy = st.integers(min_value=1, max_value=48).flatmap(
    lambda n: st.tuples(
        arrays(dtype=np.uint64, shape=n, elements=st.integers(0, 12)),
        arrays(dtype=np.uint64, shape=n, elements=st.integers(0, 12)),
    )
)


class TestFullAndDedup:
    def test_full_sends_everything(self):
        ts = compute_transfer_set(Method.FULL, fp([1, 1, 2]))
        assert ts.full_pages == 3
        assert ts.page_fraction == 1.0

    def test_dedup_sends_unique_contents(self):
        ts = compute_transfer_set(Method.DEDUP, fp([1, 1, 2, 2, 2]))
        assert ts.full_pages == 2
        assert ts.ref_pages == 3

    def test_dedup_checksums_every_page(self):
        ts = compute_transfer_set(Method.DEDUP, fp([1, 2, 3]))
        assert ts.checksummed_pages == 3


class TestDirtyMethods:
    def test_dirty_sends_changed_slots_only(self):
        current, checkpoint = fp([1, 9, 3, 8]), fp([1, 2, 3, 4])
        ts = compute_transfer_set(Method.DIRTY, current, checkpoint=checkpoint)
        assert ts.full_pages == 2
        assert ts.skipped_pages == 2
        assert ts.checksummed_pages == 0  # dirty tracking needs no hashing

    def test_dirty_with_explicit_slots(self):
        current, checkpoint = fp([1, 2, 3]), fp([1, 2, 3])
        ts = compute_transfer_set(
            Method.DIRTY,
            current,
            checkpoint=checkpoint,
            dirty_slots=np.asarray([0, 2]),
        )
        # Explicit hardware-style dirty info wins over the content proxy:
        # a write that restored old bytes still counts as dirty.
        assert ts.full_pages == 2

    def test_dirty_dedup_dedups_within_dirty_set(self):
        current, checkpoint = fp([9, 9, 3, 9]), fp([1, 2, 3, 4])
        ts = compute_transfer_set(Method.DIRTY_DEDUP, current, checkpoint=checkpoint)
        assert ts.full_pages == 1  # one distinct new content
        assert ts.ref_pages == 2
        assert ts.skipped_pages == 1

    def test_relocation_makes_dirty_overestimate(self):
        # Contents swap slots: dirty resends both, hashes resends none.
        current, checkpoint = fp([2, 1]), fp([1, 2])
        dirty = compute_transfer_set(Method.DIRTY, current, checkpoint=checkpoint)
        hashes = compute_transfer_set(Method.HASHES, current, checkpoint=checkpoint)
        assert dirty.full_pages == 2
        assert hashes.full_pages == 0
        assert hashes.checksum_only_pages == 2


class TestHashMethods:
    def test_hashes_skips_content_in_checkpoint(self):
        current, checkpoint = fp([1, 9, 3]), fp([1, 2, 3])
        ts = compute_transfer_set(Method.HASHES, current, checkpoint=checkpoint)
        assert ts.full_pages == 1
        assert ts.checksum_only_pages == 2

    def test_hashes_finds_content_at_other_offset(self):
        current, checkpoint = fp([4, 4, 4]), fp([9, 9, 4])
        ts = compute_transfer_set(Method.HASHES, current, checkpoint=checkpoint)
        assert ts.full_pages == 0
        assert ts.checksum_only_pages == 3

    def test_hashes_without_dedup_resends_duplicates(self):
        # §4.3: plain hashes transfers each missing slot in full, even
        # when several slots share the new content.
        current, checkpoint = fp([7, 7, 7]), fp([1, 2, 3])
        plain = compute_transfer_set(Method.HASHES, current, checkpoint=checkpoint)
        deduped = compute_transfer_set(
            Method.HASHES_DEDUP, current, checkpoint=checkpoint
        )
        assert plain.full_pages == 3
        assert deduped.full_pages == 1
        assert deduped.ref_pages == 2

    def test_dirty_hashes_same_pages_fewer_checksums(self):
        # §4.3 last paragraph: the dirty pre-filter saves checksum work
        # but identifies the same transfer set.
        current, checkpoint = fp([1, 9, 3, 4]), fp([1, 2, 3, 4])
        hashes = compute_transfer_set(Method.HASHES, current, checkpoint=checkpoint)
        both = compute_transfer_set(
            Method.DIRTY_HASHES, current, checkpoint=checkpoint
        )
        assert both.full_pages == hashes.full_pages
        assert both.checksummed_pages < hashes.checksummed_pages

    def test_missing_checkpoint_rejected(self):
        with pytest.raises(ValueError):
            compute_transfer_set(Method.HASHES, fp([1]))

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            compute_transfer_set(Method.HASHES, fp([1, 2]), checkpoint=fp([1]))


class TestMethodProperties:
    @given(pair_strategy)
    @settings(max_examples=60)
    def test_every_method_partitions_slots(self, pair):
        current_values, checkpoint_values = pair
        current, checkpoint = Fingerprint(current_values), Fingerprint(checkpoint_values)
        for method in Method:
            ts = compute_transfer_set(method, current, checkpoint=checkpoint)
            total = (
                ts.full_pages + ts.ref_pages + ts.checksum_only_pages + ts.skipped_pages
            )
            assert total == current.num_pages

    @given(pair_strategy)
    @settings(max_examples=60)
    def test_paper_ordering_invariants(self, pair):
        current_values, checkpoint_values = pair
        current, checkpoint = Fingerprint(current_values), Fingerprint(checkpoint_values)
        results = compare_methods(current, checkpoint, methods=tuple(Method))
        full = results[Method.FULL].full_pages
        # No method ever sends more than a full migration.
        for ts in results.values():
            assert ts.full_pages <= full
        # hashes ⊆ dirty (content proxy): a clean slot's content is in
        # the checkpoint by definition.
        assert results[Method.HASHES].full_pages <= results[Method.DIRTY].full_pages
        # Dedup never increases the page count.
        assert results[Method.HASHES_DEDUP].full_pages <= results[Method.HASHES].full_pages
        assert results[Method.DIRTY_DEDUP].full_pages <= results[Method.DIRTY].full_pages
        assert results[Method.DEDUP].full_pages <= full
        # Dirty pre-filtering does not change the hashes transfer set.
        assert (
            results[Method.DIRTY_HASHES].full_pages
            == results[Method.HASHES].full_pages
        )
        assert (
            results[Method.DIRTY_HASHES_DEDUP].full_pages
            == results[Method.HASHES_DEDUP].full_pages
        )

    @given(pair_strategy)
    @settings(max_examples=30)
    def test_page_fraction_bounded(self, pair):
        current_values, checkpoint_values = pair
        current, checkpoint = Fingerprint(current_values), Fingerprint(checkpoint_values)
        for method in PAPER_METHODS:
            ts = compute_transfer_set(method, current, checkpoint=checkpoint)
            assert 0.0 <= ts.page_fraction <= 1.0


class TestMethodMetadata:
    def test_uses_checkpoint_flags(self):
        assert not Method.FULL.uses_checkpoint
        assert not Method.DEDUP.uses_checkpoint
        assert Method.DIRTY.uses_checkpoint
        assert Method.HASHES.uses_checkpoint

    def test_uses_dedup_flags(self):
        assert Method.HASHES_DEDUP.uses_dedup
        assert not Method.HASHES.uses_dedup

    def test_paper_methods_are_the_figure5_five(self):
        assert len(PAPER_METHODS) == 5
        assert Method.FULL not in PAPER_METHODS
