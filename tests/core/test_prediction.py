"""Unit tests for the similarity predictor and adaptive selector."""

import numpy as np
import pytest

from repro.core.prediction import (
    AdaptiveSelector,
    SimilarityPredictor,
)
from repro.core.strategies import QEMU, VECYCLE
from repro.net.link import LAN_1GBE, WAN_CLOUDNET

GIB = 2**30
HOUR = 3600.0


def decaying_samples(floor=0.25, tau_h=6.0, ages_h=(0.5, 1, 2, 4, 8, 16, 24, 48)):
    return [
        (age * HOUR, floor + (1 - floor) * float(np.exp(-age / tau_h)))
        for age in ages_h
    ]


class TestPredictor:
    def test_defaults_before_observations(self):
        predictor = SimilarityPredictor()
        assert predictor.predict(0.0) == pytest.approx(1.0)
        assert predictor.predict(1e9) == pytest.approx(predictor.default_floor, abs=0.01)

    def test_fits_synthetic_decay(self):
        predictor = SimilarityPredictor()
        for age, similarity in decaying_samples():
            predictor.observe(age, similarity)
        assert predictor.floor == pytest.approx(0.25, abs=0.08)
        assert predictor.tau_s == pytest.approx(6 * HOUR, rel=0.5)
        # Interpolation at an unseen age.
        assert predictor.predict(12 * HOUR) == pytest.approx(
            0.25 + 0.75 * np.exp(-12 / 6.0), abs=0.08
        )

    def test_prediction_monotone_decreasing(self):
        predictor = SimilarityPredictor()
        for age, similarity in decaying_samples():
            predictor.observe(age, similarity)
        ages = np.linspace(0, 72 * HOUR, 20)
        values = [predictor.predict(a) for a in ages]
        assert values == sorted(values, reverse=True)

    def test_sliding_window(self):
        predictor = SimilarityPredictor(max_samples=4)
        for age, similarity in decaying_samples():
            predictor.observe(age, similarity)
        assert predictor.num_samples == 4

    def test_noisy_fit_still_reasonable(self):
        rng = np.random.default_rng(0)
        predictor = SimilarityPredictor()
        for age, similarity in decaying_samples() * 3:
            noisy = float(np.clip(similarity + rng.normal(0, 0.05), 0, 1))
            predictor.observe(age, noisy)
        assert 0.1 < predictor.predict(24 * HOUR) < 0.5

    def test_invalid_observations(self):
        predictor = SimilarityPredictor()
        with pytest.raises(ValueError):
            predictor.observe(-1, 0.5)
        with pytest.raises(ValueError):
            predictor.observe(1, 1.5)
        with pytest.raises(ValueError):
            predictor.predict(-1)
        with pytest.raises(ValueError):
            SimilarityPredictor(max_samples=0)


class TestAdaptiveSelector:
    def _trained(self):
        predictor = SimilarityPredictor()
        for age, similarity in decaying_samples():
            predictor.observe(age, similarity)
        return predictor

    def test_fresh_checkpoint_recycled(self):
        decision = AdaptiveSelector().decide(
            self._trained(), checkpoint_age_s=HOUR, memory_bytes=4 * GIB,
            link=WAN_CLOUDNET,
        )
        assert decision.strategy is VECYCLE
        assert decision.use_checkpoint

    def test_worthless_checkpoint_skipped_on_fast_link(self):
        # A near-zero-floor VM with an ancient checkpoint on a fast
        # LAN: checksum overhead outweighs the tiny predicted reuse.
        predictor = SimilarityPredictor()
        for age, similarity in decaying_samples(floor=0.01, tau_h=0.5):
            predictor.observe(age, similarity)
        decision = AdaptiveSelector().decide(
            predictor, checkpoint_age_s=72 * HOUR, memory_bytes=4 * GIB,
            link=LAN_1GBE,
        )
        assert decision.strategy is QEMU
        assert decision.predicted_similarity < 0.1

    def test_fast_link_never_recycles_with_md5(self):
        # §3.4 as policy: on 10 GbE the MD5 floor alone exceeds the
        # wire time of a full copy, so even a perfect checkpoint loses.
        from repro.net.link import LAN_10GBE

        predictor = self._trained()
        decision = AdaptiveSelector().decide(
            predictor, checkpoint_age_s=60.0, memory_bytes=4 * GIB,
            link=LAN_10GBE,
        )
        assert not decision.use_checkpoint
        assert decision.predicted_similarity > 0.8  # despite high reuse

    def test_wan_recycles_marginal_checkpoint_lan_does_not(self):
        # Moderate similarity: the LAN's checksum floor plus hysteresis
        # tips the call differently than the slow WAN.
        predictor = SimilarityPredictor()
        for age, similarity in decaying_samples(floor=0.18, tau_h=2.0):
            predictor.observe(age, similarity)
        wan = AdaptiveSelector(hysteresis=1.2).decide(
            predictor, 24 * HOUR, 4 * GIB, WAN_CLOUDNET
        )
        assert wan.predicted_similarity < 0.25
        # ~20% similarity fails the 1.2x hysteresis bar everywhere...
        assert not wan.use_checkpoint
        # ...but clears a 1.05x bar on the WAN where announce cost is
        # negligible relative to the transfer.
        relaxed = AdaptiveSelector(hysteresis=1.05).decide(
            predictor, 24 * HOUR, 4 * GIB, WAN_CLOUDNET
        )
        assert relaxed.use_checkpoint

    def test_announce_known_lowers_predicted_time(self):
        predictor = self._trained()
        with_announce = AdaptiveSelector().decide(
            predictor, HOUR, GIB, LAN_1GBE, announce_known=False
        )
        without = AdaptiveSelector().decide(
            predictor, HOUR, GIB, LAN_1GBE, announce_known=True
        )
        assert without.predicted_recycle_s < with_announce.predicted_recycle_s
        assert without.predicted_speedup > 1.0

    def test_invalid_memory(self):
        with pytest.raises(ValueError):
            AdaptiveSelector().decide(self._trained(), HOUR, 0, LAN_1GBE)
