"""Unit tests for repro.core.protocol."""

import numpy as np
import pytest

from repro.core.checksum import PAGE_SIZE, get_algorithm
from repro.core.fingerprint import Fingerprint
from repro.core.protocol import (
    WireFormat,
    first_round_traffic,
    per_page_query_traffic,
)
from repro.core.transfer import Method, compute_transfer_set


def fp(values):
    return Fingerprint(hashes=np.asarray(values, dtype=np.uint64))


class TestWireFormat:
    def test_default_checksum_is_md5_sized(self):
        assert WireFormat().checksum_bytes == 16

    def test_for_algorithm(self):
        wire = WireFormat.for_algorithm(get_algorithm("sha256"))
        assert wire.checksum_bytes == 32

    def test_message_sizes(self):
        wire = WireFormat()
        assert wire.full_page_message == 9 + 16 + PAGE_SIZE
        assert wire.checksum_message == 9 + 16
        assert wire.ref_message == 9 + 8
        assert wire.plain_page_message == 9 + PAGE_SIZE


class TestFirstRoundTraffic:
    def test_full_migration_traffic(self):
        ts = compute_transfer_set(Method.FULL, fp([1, 2, 3]))
        traffic = first_round_traffic(ts)
        # Plain pages, no checksums on a stock migration.
        assert traffic.payload_bytes == 3 * WireFormat().plain_page_message
        assert traffic.announce_bytes == 0
        assert traffic.messages == 3

    def test_vecycle_traffic_mixes_message_types(self):
        current, checkpoint = fp([1, 9, 3]), fp([1, 2, 3])
        ts = compute_transfer_set(Method.HASHES, current, checkpoint=checkpoint)
        wire = WireFormat()
        traffic = first_round_traffic(ts, wire, announce_unique_pages=3)
        expected = 1 * wire.full_page_message + 2 * wire.checksum_message
        assert traffic.payload_bytes == expected
        assert traffic.announce_bytes == 3 * wire.checksum_bytes
        assert traffic.total_bytes == expected + 48

    def test_announce_skipped_for_ping_pong(self):
        current, checkpoint = fp([1, 2]), fp([1, 2])
        ts = compute_transfer_set(Method.HASHES, current, checkpoint=checkpoint)
        traffic = first_round_traffic(ts, announce_unique_pages=0)
        assert traffic.announce_bytes == 0

    def test_dedup_refs_are_cheap(self):
        ts = compute_transfer_set(Method.DEDUP, fp([5, 5, 5, 5]))
        wire = WireFormat()
        traffic = first_round_traffic(ts, wire)
        assert traffic.payload_bytes == wire.plain_page_message + 3 * wire.ref_message

    def test_traffic_shrinks_with_similarity(self):
        checkpoint = fp(list(range(100)))
        similar = fp(list(range(100)))
        divergent = fp(list(range(100, 200)))
        wire = WireFormat()
        low = first_round_traffic(
            compute_transfer_set(Method.HASHES, similar, checkpoint=checkpoint), wire
        )
        high = first_round_traffic(
            compute_transfer_set(Method.HASHES, divergent, checkpoint=checkpoint), wire
        )
        assert low.payload_bytes < high.payload_bytes / 10


class TestPerPageQuery:
    def test_query_traffic_scales_with_pages(self):
        one = per_page_query_traffic(1)
        many = per_page_query_traffic(1000)
        assert many.payload_bytes == 1000 * one.payload_bytes
        assert many.messages == 1000

    def test_negative_pages_rejected(self):
        with pytest.raises(ValueError):
            per_page_query_traffic(-1)

    def test_byte_volume_comparable_to_bulk_announce(self):
        # §3.2: the volume is similar; the latency (modelled in the link
        # layer) is what kills the per-page scheme.
        wire = WireFormat()
        num_pages = 1 << 16
        query = per_page_query_traffic(num_pages, wire)
        bulk = num_pages * wire.checksum_bytes
        assert query.total_bytes < 3 * bulk
