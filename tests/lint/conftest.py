"""Shared fixtures for the lint-suite tests.

The rules are pure functions of a :class:`~repro.lint.core.Project`,
so most tests lint the *real* committed tree with targeted in-memory
``overrides`` — mutating one file's text without touching disk — and
assert the mutation turns into (or stays free of) findings.
"""

from pathlib import Path

import pytest

from repro.lint import Project

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="session")
def repo_root() -> Path:
    return REPO_ROOT


@pytest.fixture()
def project() -> Project:
    """The committed tree, unmutated."""
    return Project(REPO_ROOT)


@pytest.fixture()
def mutate():
    """``mutate({"src/...": new_text_or_None}) -> Project``."""

    def _mutate(overrides):
        return Project(REPO_ROOT, overrides=overrides)

    return _mutate
