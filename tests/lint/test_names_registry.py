"""The live metrics registry matches the declared names, at runtime.

The static rule proves every *literal* is declared; this test proves
the declarations cover what a real cluster run actually emits — the
same live orchestrator demo the CI smoke job drives, scaled down.  It
runs in a subprocess so the process-wide registry contains exactly that
run's instruments, not whatever the rest of the test session emitted.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.obs import names

_DRIVER = """
import json
from repro.experiments.live_cluster import run
from repro.obs.metrics import get_registry
from repro.obs.names import undeclared

run(hosts=2, migrations=2, num_pages=256, seed=7)
emitted = sorted(get_registry().snapshot())
print(json.dumps({
    "emitted": emitted,
    "undeclared": sorted(undeclared(emitted)),
}))
"""


def test_live_orchestrator_run_emits_only_declared_names():
    root = Path(__file__).resolve().parents[2]
    proc = subprocess.run(
        [sys.executable, "-c", _DRIVER],
        capture_output=True,
        text=True,
        cwd=root,
        env={**os.environ, "PYTHONPATH": str(root / "src")},
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    data = json.loads(proc.stdout.splitlines()[-1])
    assert data["emitted"], "the demo run emitted no metrics at all?"
    assert data["undeclared"] == [], (
        "live run emitted names missing from repro/obs/names.py: "
        f"{data['undeclared']}"
    )


def test_declared_names_helpers_agree():
    # Sanity on the helpers the diff rests on: every concrete declared
    # name matches itself, and the pattern machinery resolves labels.
    for spec in names.METRICS:
        if not spec.is_pattern:
            assert names.is_declared(spec.name, kind=spec.kind)
    assert names.is_declared("runtime.bytes.full")
    assert names.spec_for("runtime.bytes.full").name == "runtime.bytes.<kind>"
    assert not names.is_declared("runtime.bytes.full.extra")
    assert names.undeclared(["no.such.metric"]) == ["no.such.metric"]
