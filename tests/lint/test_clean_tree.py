"""Meta-tests: the committed tree lints clean, mutations exit 1.

The first class runs the real CLI against the real tree — the same
invocation CI uses — and the second copies the tree to a sandbox,
applies each regression-class mutation the suite was built to catch,
and asserts the exit status flips to 1.
"""

import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import ALL_RULES, Project, load_baseline, run_lint
from repro.lint.cli import run as lint_run


class TestCommittedTree:
    def test_run_lint_is_clean(self, repo_root):
        baseline = load_baseline(repo_root / "lint-baseline.json")
        report = run_lint(Project(repo_root), ALL_RULES, baseline)
        assert report.ok, report.render_text()

    def test_baseline_is_empty(self, repo_root):
        # The tree starts clean: the committed baseline grandfathers
        # nothing, so any future finding must be fixed or suppressed
        # with a reason, not silently baselined.
        assert load_baseline(repo_root / "lint-baseline.json") == {}

    def test_cli_exits_zero(self, repo_root, capsys):
        assert lint_run(["--root", str(repo_root)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_cli_json_report(self, repo_root, capsys):
        assert lint_run(["--root", str(repo_root), "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        assert set(data["rules"]) == {rule.id for rule in ALL_RULES}

    def test_vecycle_lint_subcommand(self, repo_root):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint",
             "--root", str(repo_root), "--format", "json"],
            capture_output=True,
            text=True,
            cwd=repo_root,
            env={**os.environ, "PYTHONPATH": str(repo_root / "src")},
        )
        assert proc.returncode == 0, proc.stderr
        assert json.loads(proc.stdout)["ok"] is True


@pytest.fixture(scope="module")
def tree_copy(tmp_path_factory):
    """A disposable on-disk copy of the repo the CLI can be run against."""
    root = Path(__file__).resolve().parents[2]
    copy = tmp_path_factory.mktemp("lint-tree") / "repo"
    shutil.copytree(
        root,
        copy,
        ignore=shutil.ignore_patterns(
            ".git", "__pycache__", ".pytest_cache", "*.pyc"
        ),
    )
    return copy


def _edit(tree: Path, rel: str, old: str, new: str) -> None:
    path = tree / rel
    text = path.read_text()
    assert old in text, f"{old!r} not found in {rel}"
    path.write_text(text.replace(old, new))


def _restore(tree: Path, rel: str, original: str) -> None:
    (tree / rel).write_text(original)


class TestMutationsExitOne:
    """Each regression class the ISSUE names must flip the exit status."""

    def test_deleting_a_dispatch_arm_exits_one(self, tree_copy, capsys):
        rel = "src/repro/runtime/daemon.py"
        original = (tree_copy / rel).read_text()
        try:
            _edit(tree_copy, rel, "TYPE_PAGE_REF: _apply_ref,", "")
            assert lint_run(["--root", str(tree_copy)]) == 1
            assert "TYPE_PAGE_REF" in capsys.readouterr().out
        finally:
            _restore(tree_copy, rel, original)

    def test_renaming_a_metric_literal_exits_one(self, tree_copy, capsys):
        rel = "src/repro/runtime/pipeline.py"
        original = (tree_copy / rel).read_text()
        try:
            _edit(
                tree_copy, rel,
                '"pipeline.stage_stall_seconds"',
                '"pipeline.stage_stall_secs"',
            )
            assert lint_run(["--root", str(tree_copy)]) == 1
            assert "pipeline.stage_stall_secs" in capsys.readouterr().out
        finally:
            _restore(tree_copy, rel, original)

    def test_blocking_sleep_in_runtime_async_def_exits_one(
        self, tree_copy, capsys
    ):
        rel = "src/repro/runtime/daemon.py"
        original = (tree_copy / rel).read_text()
        try:
            _edit(
                tree_copy, rel,
                "        self._count(\"daemon.heartbeats\")",
                "        time.sleep(0.5)\n"
                "        self._count(\"daemon.heartbeats\")",
            )
            assert lint_run(["--root", str(tree_copy)]) == 1
            assert "time.sleep" in capsys.readouterr().out
        finally:
            _restore(tree_copy, rel, original)

    def test_unmutated_copy_exits_zero(self, tree_copy, capsys):
        assert lint_run(["--root", str(tree_copy)]) == 0
        capsys.readouterr()
