"""Per-rule fixtures: positive, negative, and suppressed cases.

Each mutation edits the committed tree in memory (``Project``
overrides) and asserts the rule sees exactly the defect the mutation
introduces — these are the acceptance checks that the linter would
catch the regression classes it was built for.
"""

from repro.lint.rules import (
    asyncsafety,
    determinism,
    faults,
    metricnames,
    protocol,
)

DAEMON = "src/repro/runtime/daemon.py"
FRAMES = "src/repro/runtime/frames.py"
PIPELINE = "src/repro/runtime/pipeline.py"
FAULTPOINTS = "src/repro/chaos/faultpoints.py"


def _messages(findings):
    return [f.message for f in findings]


# --- protocol --------------------------------------------------------------


class TestProtocolRule:
    def test_clean_tree_has_no_findings(self, project):
        assert list(protocol.check(project)) == []

    def test_deleted_dispatch_arm_is_flagged(self, project, mutate):
        mutated = project.text(DAEMON).replace(
            "TYPE_PAGE_REF: _apply_ref,", ""
        )
        assert mutated != project.text(DAEMON)
        findings = list(protocol.check(mutate({DAEMON: mutated})))
        assert any(
            "TYPE_PAGE_REF" in m and "daemon" in m for m in _messages(findings)
        )

    def test_tag_collision_is_flagged(self, project, mutate):
        mutated = project.text(FRAMES).replace(
            "TYPE_READY = 0x02", "TYPE_READY = 0x01"
        )
        findings = list(protocol.check(mutate({FRAMES: mutated})))
        assert any("collide" in m for m in _messages(findings))

    def test_unnamed_tag_is_flagged(self, project, mutate):
        mutated = project.text(FRAMES) + "\nTYPE_EXTRA = 0x40\n"
        findings = list(protocol.check(mutate({FRAMES: mutated})))
        messages = _messages(findings)
        assert any("TYPE_EXTRA" in m for m in messages)


# --- metric-names ----------------------------------------------------------


class TestMetricNamesRule:
    def test_clean_tree_has_no_findings(self, project):
        assert list(metricnames.check(project)) == []

    def test_renamed_metric_literal_is_flagged(self, project, mutate):
        mutated = project.text(PIPELINE).replace(
            '"pipeline.stage_stall_seconds"', '"pipeline.stage_stall_secs"'
        )
        assert mutated != project.text(PIPELINE)
        findings = list(metricnames.check(mutate({PIPELINE: mutated})))
        assert any(
            "pipeline.stage_stall_secs" in m for m in _messages(findings)
        )

    def test_undeclared_emission_is_flagged(self, mutate):
        rel = "src/repro/runtime/_lintdemo.py"
        project = mutate({rel: (
            "from repro.obs.metrics import get_registry\n"
            "get_registry().counter('runtime.surprise_counter').add(1)\n"
        )})
        findings = list(metricnames.check(project))
        assert any(
            "runtime.surprise_counter" in m for m in _messages(findings)
        )

    def test_suppression_comment_is_honoured(self, mutate):
        rel = "src/repro/runtime/_lintdemo.py"
        project = mutate({rel: (
            "from repro.obs.metrics import get_registry\n"
            "get_registry().counter('runtime.surprise_counter')"
            ".add(1)  # lint: ignore[metric-names]\n"
        )})
        from repro.lint import run_lint
        from repro.lint.rules import rules_by_id

        report = run_lint(project, rules_by_id(["metric-names"]), {})
        assert report.ok
        assert report.suppressed >= 1

    def test_undocumented_declared_name_is_flagged(self, project, mutate):
        docs = "docs/observability.md"
        mutated = project.text(docs).replace(
            "`daemon.peer_errors`", "`daemon.peer_mistakes`"
        )
        assert mutated != project.text(docs)
        findings = list(metricnames.check(mutate({docs: mutated})))
        assert any(
            "daemon.peer_errors" in m and "not documented" in m
            for m in _messages(findings)
        )


# --- fault-points ----------------------------------------------------------


class TestFaultPointsRule:
    def test_clean_tree_has_no_findings(self, project):
        assert list(faults.check(project)) == []

    def test_undeclared_fault_literal_is_flagged(self, mutate):
        rel = "src/repro/storage/_lintdemo.py"
        project = mutate({rel: (
            "class Demo:\n"
            "    def _fault(self, point):\n"
            "        pass\n"
            "    def go(self):\n"
            "        self._fault('bogus.point')\n"
        )})
        findings = list(faults.check(project))
        assert any("bogus.point" in m for m in _messages(findings))

    def test_registry_missing_a_point_is_flagged(self, project, mutate):
        mutated = project.text(FAULTPOINTS).replace(
            '"session.written": '
            '"A completed session record is durably on disk.",',
            "",
        )
        assert mutated != project.text(FAULTPOINTS)
        findings = list(faults.check(mutate({FAULTPOINTS: mutated})))
        assert any(
            "session.written" in m and "not declare" in m
            for m in _messages(findings)
        )

    def test_registry_extra_knob_is_flagged(self, project, mutate):
        mutated = project.text(FAULTPOINTS).replace(
            '"drop_telemetry_times": "Abort this many TELEMETRY probes.",',
            '"drop_telemetry_times": "Abort this many TELEMETRY probes.",\n'
            '    "phantom_knob": "Not actually implemented anywhere.",',
        )
        findings = list(faults.check(mutate({FAULTPOINTS: mutated})))
        assert any("phantom_knob" in m for m in _messages(findings))

    def test_untested_point_is_flagged(self, project, mutate):
        # Hide the only test referencing the knob: the rule demands
        # every declared knob be exercised somewhere under tests/.
        hidden = {
            rel: None
            for rel in project.source_files("tests")
            if "drop_telemetry_times" in (project.try_text(rel) or "")
        }
        assert hidden, "expected at least one test to reference the knob"
        findings = list(faults.check(mutate(hidden)))
        assert any(
            "drop_telemetry_times" in m and "not referenced" in m
            for m in _messages(findings)
        )


# --- async-safety ----------------------------------------------------------


class TestAsyncSafetyRule:
    def test_clean_tree_has_no_findings(self, project):
        assert list(asyncsafety.check(project)) == []

    def test_time_sleep_in_async_def_is_flagged(self, mutate):
        rel = "src/repro/runtime/_lintdemo.py"
        project = mutate({rel: (
            "import time\n"
            "async def serve():\n"
            "    time.sleep(1.0)\n"
        )})
        findings = list(asyncsafety.check(project))
        assert any("time.sleep" in m for m in _messages(findings))

    def test_sync_def_is_not_flagged(self, mutate):
        rel = "src/repro/runtime/_lintdemo.py"
        project = mutate({rel: (
            "import time\n"
            "def flush():\n"
            "    time.sleep(1.0)\n"
        )})
        assert list(asyncsafety.check(project)) == []

    def test_nested_sync_helper_is_not_flagged(self, mutate):
        rel = "src/repro/runtime/_lintdemo.py"
        project = mutate({rel: (
            "import time\n"
            "async def serve():\n"
            "    def blocking_io():\n"
            "        time.sleep(1.0)\n"
            "    return blocking_io\n"
        )})
        assert list(asyncsafety.check(project)) == []

    def test_sync_open_in_async_def_is_flagged(self, mutate):
        rel = "src/repro/runtime/_lintdemo.py"
        project = mutate({rel: (
            "async def dump():\n"
            "    with open('/tmp/x', 'w') as fh:\n"
            "        fh.write('x')\n"
        )})
        findings = list(asyncsafety.check(project))
        assert any("open()" in m for m in _messages(findings))

    def test_unawaited_coroutine_is_flagged(self, mutate):
        rel = "src/repro/runtime/_lintdemo.py"
        project = mutate({rel: (
            "class Daemon:\n"
            "    async def _drain(self):\n"
            "        pass\n"
            "    async def stop(self):\n"
            "        self._drain()\n"
        )})
        findings = list(asyncsafety.check(project))
        assert any("_drain" in m and "awaited" in m for m in _messages(findings))

    def test_scheduled_coroutine_is_not_flagged(self, mutate):
        rel = "src/repro/runtime/_lintdemo.py"
        project = mutate({rel: (
            "import asyncio\n"
            "class Daemon:\n"
            "    async def _drain(self):\n"
            "        pass\n"
            "    async def stop(self):\n"
            "        await self._drain()\n"
            "        asyncio.create_task(self._drain())\n"
        )})
        assert list(asyncsafety.check(project)) == []


# --- determinism -----------------------------------------------------------


class TestDeterminismRule:
    def test_clean_tree_has_no_findings(self, project):
        assert list(determinism.check(project)) == []

    def test_wallclock_in_seeded_module_is_flagged(self, mutate):
        rel = "src/repro/chaos/_lintdemo.py"
        project = mutate({rel: (
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n"
        )})
        findings = list(determinism.check(project))
        assert any("time.time" in m for m in _messages(findings))

    def test_unseeded_random_draw_is_flagged(self, mutate):
        rel = "src/repro/parallel/_lintdemo.py"
        project = mutate({rel: (
            "import random\n"
            "def pick():\n"
            "    return random.random()\n"
        )})
        findings = list(determinism.check(project))
        assert any("random.random" in m for m in _messages(findings))

    def test_seeded_constructors_are_allowed(self, mutate):
        rel = "src/repro/traces/_lintdemo.py"
        project = mutate({rel: (
            "import random\n"
            "import numpy as np\n"
            "def make(seed):\n"
            "    return random.Random(seed), np.random.default_rng(seed)\n"
        )})
        assert list(determinism.check(project)) == []

    def test_instance_rng_calls_are_allowed(self, mutate):
        rel = "src/repro/chaos/_lintdemo.py"
        project = mutate({rel: (
            "class Soak:\n"
            "    def __init__(self, rng):\n"
            "        self.rng = rng\n"
            "    def pick(self):\n"
            "        return self.rng.random()\n"
        )})
        assert list(determinism.check(project)) == []

    def test_monotonic_is_allowed_for_measurement(self, mutate):
        rel = "src/repro/chaos/_lintdemo.py"
        project = mutate({rel: (
            "import time\n"
            "def measure():\n"
            "    return time.monotonic()\n"
        )})
        assert list(determinism.check(project)) == []

    def test_os_urandom_is_flagged(self, mutate):
        rel = "src/repro/mem/mutation.py"
        project_obj = mutate({rel: (
            "import os\n"
            "def entropy():\n"
            "    return os.urandom(8)\n"
        )})
        findings = list(determinism.check(project_obj))
        assert any("os.urandom" in m for m in _messages(findings))
