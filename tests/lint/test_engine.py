"""The lint engine itself: project model, suppression, baseline."""

import json

import pytest

from repro.lint import (
    BASELINE_FILENAME,
    Finding,
    Project,
    Rule,
    load_baseline,
    run_lint,
    write_baseline,
)
from repro.lint.core import suppressed_rules


def _rule_returning(*findings):
    return Rule("demo", "demo rule", lambda project: list(findings))


class TestProjectOverrides:
    def test_override_replaces_file_text(self, repo_root):
        project = Project(repo_root, overrides={"src/repro/cli.py": "x = 1\n"})
        assert project.text("src/repro/cli.py") == "x = 1\n"
        # The real file on disk is untouched and still served elsewhere.
        assert "argparse" in Project(repo_root).text("src/repro/cli.py")

    def test_none_override_hides_the_file(self, repo_root):
        project = Project(
            repo_root, overrides={"src/repro/lint/core.py": None}
        )
        assert not project.exists("src/repro/lint/core.py")
        assert "src/repro/lint/core.py" not in project.source_files(
            "src/repro/lint"
        )

    def test_overrides_can_add_new_files(self, repo_root):
        project = Project(
            repo_root, overrides={"src/repro/runtime/extra.py": "y = 2\n"}
        )
        assert "src/repro/runtime/extra.py" in project.source_files(
            "src/repro/runtime"
        )


class TestSuppressions:
    def test_line_suppression_parses(self):
        scope, rules = suppressed_rules("x = 1  # lint: ignore[determinism]")
        assert scope is False
        assert rules == ("determinism",)

    def test_file_suppression_parses(self):
        scope, rules = suppressed_rules("# lint: ignore-file[async-safety]")
        assert scope is True
        assert rules == ("async-safety",)

    def test_bare_ignore_covers_all_rules(self):
        scope, rules = suppressed_rules("x  # lint: ignore")
        assert scope is False and rules == ()

    def test_non_suppression_lines_return_none(self):
        assert suppressed_rules("x = 1  # just a comment") is None

    def test_suppressed_finding_is_counted_not_reported(self, repo_root):
        rel = "src/repro/demo_suppressed.py"
        project = Project(
            repo_root,
            overrides={rel: "bad = 1  # lint: ignore[demo]\n"},
        )
        finding = Finding("demo", rel, 1, "synthetic defect")
        report = run_lint(project, [_rule_returning(finding)], {})
        assert report.ok
        assert report.suppressed == 1
        assert report.findings == []

    def test_other_rules_suppression_does_not_apply(self, repo_root):
        rel = "src/repro/demo_other.py"
        project = Project(
            repo_root,
            overrides={rel: "bad = 1  # lint: ignore[other-rule]\n"},
        )
        finding = Finding("demo", rel, 1, "synthetic defect")
        report = run_lint(project, [_rule_returning(finding)], {})
        assert not report.ok


class TestBaseline:
    def test_round_trip(self, tmp_path):
        finding = Finding("demo", "src/x.py", 3, "synthetic defect")
        path = tmp_path / BASELINE_FILENAME
        write_baseline(path, [finding])
        assert load_baseline(path) == {
            finding.fingerprint: finding.render()
        }

    def test_baselined_finding_does_not_fail(self, repo_root, tmp_path):
        finding = Finding("demo", "src/x.py", 3, "synthetic defect")
        report = run_lint(
            Project(repo_root),
            [_rule_returning(finding)],
            {finding.fingerprint: finding.render()},
        )
        assert report.ok
        assert [f.fingerprint for f in report.baselined] == [
            finding.fingerprint
        ]

    def test_fingerprint_ignores_line_numbers(self):
        a = Finding("demo", "src/x.py", 3, "synthetic defect")
        b = Finding("demo", "src/x.py", 33, "synthetic defect")
        assert a.fingerprint == b.fingerprint

    def test_stale_baseline_entries_are_reported(self, repo_root):
        report = run_lint(
            Project(repo_root), [], {"deadbeefdeadbeef": "gone finding"}
        )
        assert report.ok
        assert report.unused_baseline == ["deadbeefdeadbeef"]

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / BASELINE_FILENAME
        path.write_text(json.dumps({"version": 99, "findings": {}}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(path)


class TestReport:
    def test_json_shape(self, repo_root):
        finding = Finding("demo", "src/x.py", 3, "synthetic defect")
        report = run_lint(Project(repo_root), [_rule_returning(finding)], {})
        data = report.to_dict()
        assert data["ok"] is False
        assert data["rules"] == ["demo"]
        (entry,) = data["findings"]
        assert entry["rule"] == "demo"
        assert entry["fingerprint"] == finding.fingerprint

    def test_text_render_mentions_status(self, repo_root):
        report = run_lint(Project(repo_root), [], {})
        assert "clean" in report.render_text()
