"""Documentation gate: every public item carries a docstring.

The repository promises "doc comments on every public item"; this test
makes the promise enforceable.  Public = importable from a ``repro``
module and not underscore-prefixed.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _repro_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(_repro_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(obj):
            for method_name, method in vars(obj).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if not (method.__doc__ and method.__doc__.strip()):
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, (
        f"{module.__name__} has undocumented public items: {undocumented}"
    )
