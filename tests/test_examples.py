"""Smoke tests: the shipped examples must actually run.

Each example is executed in-process (imported as a module and its
``main()`` called) with stdout captured.  The slowest examples
(19-day trace generation) are exercised through their building blocks
elsewhere; here we run the ones that finish in seconds.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def load_example(name):
    """Import an example script as a module without running __main__."""
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py"), path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesRun:
    def test_quickstart(self, capsys):
        load_example("quickstart.py").main()
        out = capsys.readouterr().out
        assert "vecycle" in out and "qemu" in out
        assert "wan-cloudnet" in out

    def test_byte_level_protocol(self, capsys):
        load_example("byte_level_protocol.py").main()
        out = capsys.readouterr().out
        assert "idle guest (100% similarity)" in out
        assert "destination byte-identical: True" in out
        assert "first visit (no checkpoint)" in out

    def test_whole_vm_wan_move(self, capsys):
        load_example("whole_vm_wan_move.py").main()
        out = capsys.readouterr().out
        assert "Outbound" in out and "Return" in out
        assert "whole-vm[vecycle]" in out

    def test_consolidation_fleet(self, capsys):
        load_example("consolidation_fleet.py").main = None  # not used
        module = load_example("consolidation_fleet.py")
        module.act_three_adaptive_selection()
        out = capsys.readouterr().out
        assert "virtual-desktop" in out and "web-crawler" in out

    def test_wan_evacuation_importable(self):
        module = load_example("wan_evacuation.py")
        assert hasattr(module, "evacuate_and_return")

    def test_vdi_consolidation_importable(self):
        module = load_example("vdi_consolidation.py")
        assert hasattr(module, "analytic_replay")
        assert hasattr(module, "live_week")

    def test_trace_analysis_importable(self):
        module = load_example("trace_analysis.py")
        assert hasattr(module, "main")

    def test_every_example_has_module_docstring(self):
        for path in sorted(EXAMPLES_DIR.glob("*.py")):
            text = path.read_text()
            assert text.lstrip().startswith(('"""', "#!")), path.name
            assert '"""' in text, path.name
